"""Supervised, fault-tolerant task execution for solver campaigns.

The paper's finite-model search is an unbounded sweep: a pathological
CHC problem can hang propagation, exhaust memory, or blow the recursion
limit, and before this layer existed any one of those took the whole
campaign down with it.  The supervisor turns individual-task failure
into structured per-task verdicts:

* ``isolate=True`` runs each task in a **worker subprocess** with a
  hard out-of-process **wall-clock watchdog** (``timeout * factor +
  grace``) and an optional address-space cap, so hangs become
  ``error:timeout_hard``, allocation blowups become ``error:oom``, and
  crashes become ``error:crash`` — each with the campaign continuing;
* result-less worker deaths (a kill, a fork failure, a flaky
  environment) are **retried with exponential backoff + deterministic
  jitter** up to ``max_retries`` times;
* every finished verdict is flushed to a **JSONL journal** the moment
  it exists, and ``resume=True`` replays a journal so an interrupted
  campaign re-executes only the remainder;
* SIGINT/SIGTERM trigger a **graceful shutdown**: the in-flight worker
  is killed, the journal is flushed, and the partial results are
  returned (the harness renders them as a partial report).

With campaign engine-sharing on, consecutive tasks with the same
signature ``group_key`` ride one worker, which hosts a private
:class:`~repro.mace.pool.EnginePool` — the in-process sharing mode,
preserved per worker — and streams one result per task so the watchdog
still applies per task.  If a batch worker dies midway, its finished
verdicts are kept and the remainder is rescheduled in fresh singleton
workers.

Every failure path is exercised deterministically through
:class:`~repro.exec.faults.ReproFaultPlan` (``REPRO_FAULT_PLAN``).
"""

from __future__ import annotations

import contextlib
import logging
import multiprocessing
import signal
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.exec import worker as worker_mod
from repro.exec.faults import (
    CooperativeHang,
    ReproFaultPlan,
    TransientWorkerFault,
)
from repro.exec.journal import (
    ResultsJournal,
    check_meta,
    config_fingerprint,
    load_journal,
)
from repro.obs import runtime as obs_runtime
from repro.obs.events import (
    EventBus,
    HeartbeatRenderer,
    ProgressMonitor,
    legacy_line_subscriber,
)
from repro.obs.profiler import maybe_profile, profile_path

logger = logging.getLogger(__name__)

Progress = Callable[[str], None]


class CampaignInterrupted(Exception):
    """SIGINT/SIGTERM (or an injected interrupt) stopped the campaign."""


@dataclass
class ExecPolicy:
    """Execution-layer knobs, independent of any solver configuration.

    ``hard_timeout_factor``/``hard_timeout_grace`` size the watchdog:
    a worker gets ``timeout * factor + grace`` of wall clock per task
    before it is killed — strictly beyond the solver's cooperative
    deadline, so the watchdog only fires on genuinely stuck tasks.
    ``max_retries`` bounds retries of *transient* failures (a worker
    that died without writing a result); deterministic faults — a
    structured crash, a hard timeout, an OOM — are never retried.

    The observability block: ``heartbeat_interval`` > 0 makes workers
    (and an in-process sampling thread) emit periodic live-progress
    heartbeats onto the event bus, rendered at most once per
    ``progress_throttle`` seconds; ``profile_dir`` dumps one cProfile
    pstats file per task there.
    """

    isolate: bool = False
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25
    mem_limit_mb: Optional[int] = None
    hard_timeout_factor: float = 1.5
    hard_timeout_grace: float = 1.0
    share_engines: bool = False
    solver_opts: Optional[dict] = None
    heartbeat_interval: float = 0.0
    progress_throttle: float = 1.0
    profile_dir: Optional[str] = None
    # None = read REPRO_FAULT_PLAN from the environment (empty plan if
    # unset); pass an explicit plan (possibly empty) to override
    fault_plan: Optional[ReproFaultPlan] = None

    def plan(self) -> ReproFaultPlan:
        if self.fault_plan is not None:
            return self.fault_plan
        return ReproFaultPlan.from_env()

    def hard_timeout(self, timeout: float) -> float:
        return timeout * self.hard_timeout_factor + self.hard_timeout_grace

    def backoff(self, task_id: str, attempt: int) -> float:
        """Sleep before dispatching ``attempt`` (>= 2) of a task.

        Exponential in the attempt number with a deterministic jitter
        derived from the task id, so reruns are reproducible while
        herds of retried tasks still spread out.
        """
        base = self.backoff_base * (
            self.backoff_factor ** max(attempt - 2, 0)
        )
        salt = zlib.crc32(f"{task_id}:{attempt}".encode()) % 1000
        return base * (1.0 + self.backoff_jitter * (salt / 1000.0))


@dataclass
class TaskSpec:
    """One (problem, solver) unit of supervised work.

    Harness tasks carry a live ``problem`` (rendered to SMT-LIB text
    only when a worker actually needs it); CLI tasks carry ``smt_text``
    directly.  ``group_key`` marks signature-compatible tasks: with
    engine sharing on, consecutive tasks with equal keys batch into one
    worker.
    """

    task_id: str
    solver: str
    timeout: float
    expected_status: Optional[str] = None
    problem: Optional[object] = None
    smt_text: Optional[str] = None
    index: int = 0
    group_key: Optional[object] = None

    def build_system(self):
        if self.problem is not None:
            return self.problem.build()
        from repro.chc.parser import parse_chc

        return parse_chc(self.smt_text or "", name=self.task_id)

    def payload_text(self) -> str:
        """The SMT-LIB form shipped to workers (rendered once)."""
        if self.smt_text is None:
            from repro.chc.printer import print_system

            assert self.problem is not None
            self.smt_text = print_system(self.problem.build())
        return self.smt_text


@dataclass
class ExecStats:
    """Campaign-level accounting of the execution layer."""

    tasks_total: int = 0
    tasks_executed: int = 0
    tasks_resumed: int = 0
    retries: int = 0
    workers_spawned: int = 0
    # engine-snapshot hand-off between workers: workers that started
    # from a predecessor's snapshot instead of cold, and snapshots
    # received back alongside verdicts (the supply side)
    workers_warm_started: int = 0
    snapshots_collected: int = 0
    interrupted: bool = False
    isolate: bool = False
    # live progress: heartbeats seen on the verdict pipes, and the most
    # recent one (the supervisor's view of in-flight worker state)
    heartbeats_received: int = 0
    last_heartbeat: Optional[dict] = None
    error_counts: dict[str, int] = field(default_factory=dict)
    pool_stats: Optional[dict] = None

    def count_error(self, kind: Optional[str]) -> None:
        if kind:
            self.error_counts[kind] = self.error_counts.get(kind, 0) + 1

    def merge_pool(self, other: dict) -> None:
        """Fold one worker's EnginePool counters into the campaign's."""
        if self.pool_stats is None:
            self.pool_stats = dict(other)
            return
        for key, value in other.items():
            if isinstance(value, (int, float)):
                self.pool_stats[key] = self.pool_stats.get(key, 0) + value

    def as_dict(self) -> dict:
        return {
            "tasks_total": self.tasks_total,
            "tasks_executed": self.tasks_executed,
            "tasks_resumed": self.tasks_resumed,
            "retries": self.retries,
            "workers_spawned": self.workers_spawned,
            "workers_warm_started": self.workers_warm_started,
            "snapshots_collected": self.snapshots_collected,
            "interrupted": self.interrupted,
            "isolate": self.isolate,
            "heartbeats_received": self.heartbeats_received,
            "last_heartbeat": self.last_heartbeat,
            "error_counts": dict(self.error_counts),
            "pool_stats": self.pool_stats,
        }


# ---------------------------------------------------------------------------
# entry point


def execute_tasks(
    tasks: Sequence[TaskSpec],
    policy: Optional[ExecPolicy] = None,
    *,
    journal_path: Optional[str] = None,
    resume: bool = False,
    progress: Optional[Progress] = None,
    engine_pool=None,
    bus: Optional[EventBus] = None,
) -> tuple[dict[str, dict], ExecStats]:
    """Run every task under the policy; never lose finished verdicts.

    Returns ``(records, stats)``: ``records`` maps task ids to plain
    verdict dicts (see :func:`repro.exec.worker.solve_task`), including
    verdicts replayed from the journal on resume.  On SIGINT/SIGTERM
    the partial records collected so far are returned with
    ``stats.interrupted`` set — the journal already holds all of them.

    Progress reporting rides the :class:`~repro.obs.events.EventBus`:
    every verdict becomes a ``task_finished`` event and (with
    ``policy.heartbeat_interval`` > 0) live ``heartbeat`` events flow in
    between.  The legacy ``progress`` string callback still works — it
    is subscribed through an adapter rendering the historical lines —
    and callers needing structured events pass their own ``bus``.
    """
    policy = policy or ExecPolicy()
    plan = policy.plan()
    stats = ExecStats(tasks_total=len(tasks), isolate=policy.isolate)
    bus = bus if bus is not None else EventBus()
    if progress is not None:
        bus.subscribe(legacy_line_subscriber(progress))
        if policy.heartbeat_interval > 0:
            bus.subscribe(
                HeartbeatRenderer(
                    progress, min_interval=policy.progress_throttle
                )
            )
    results: dict[str, dict] = {}
    pending = list(tasks)
    solver_opts = policy.solver_opts or {}
    meta = {
        "timeout": tasks[0].timeout if tasks else None,
        "solvers": sorted({t.solver for t in tasks}),
        "sat_backend": solver_opts.get("sat_backend", "python"),
        "config_fingerprint": config_fingerprint(policy.solver_opts),
    }
    journal: Optional[ResultsJournal] = None
    if journal_path:
        if resume:
            old_meta, entries = load_journal(journal_path)
            check_meta(
                old_meta,
                timeout=meta["timeout"] or 0.0,
                solvers=meta["solvers"],
                sat_backend=meta["sat_backend"],
                fingerprint=meta["config_fingerprint"],
            )
            for task in tasks:
                entry = entries.get(task.task_id)
                if entry is None:
                    continue
                record = {
                    k: v for k, v in entry.items() if k != "kind"
                }
                record["resumed"] = True
                results[task.task_id] = record
                stats.tasks_resumed += 1
            pending = [t for t in tasks if t.task_id not in results]
        journal = ResultsJournal(journal_path, meta=meta)
    try:
        with _graceful_signals():
            try:
                if policy.isolate:
                    _execute_isolated(
                        pending, policy, plan, stats, results, journal,
                        bus,
                    )
                else:
                    _execute_inprocess(
                        pending, policy, plan, stats, results, journal,
                        bus, engine_pool,
                    )
            except (KeyboardInterrupt, CampaignInterrupted) as stop:
                logger.warning(
                    "campaign interrupted (%s): %d/%d verdicts journaled, "
                    "resume with the same journal to finish",
                    type(stop).__name__,
                    len(results),
                    len(tasks),
                )
                stats.interrupted = True
    finally:
        if journal is not None:
            journal.close()
    return results, stats


# ---------------------------------------------------------------------------
# shared helpers


def _check_injected_interrupt(
    task: TaskSpec, plan: ReproFaultPlan, attempt: int
) -> None:
    """Simulated SIGINT between tasks (the supervisor-level fault)."""
    spec = plan.spec_for(task.task_id, task.index)
    if spec is not None and spec.kind == "interrupt" and attempt == 1:
        raise CampaignInterrupted(
            f"injected interrupt before {task.task_id}"
        )


def _finish(
    task: TaskSpec,
    record: dict,
    attempt: int,
    stats: ExecStats,
    results: dict[str, dict],
    journal: Optional[ResultsJournal],
    bus: Optional[EventBus],
) -> None:
    record["task"] = task.task_id
    record["attempts"] = attempt
    stats.tasks_executed += 1
    kind = record.get("error_kind")
    stats.count_error(kind)
    results[task.task_id] = record
    if journal is not None:
        journal.record(record)
    if bus is not None:
        bus.emit(
            {
                "kind": "task_finished",
                "task": task.task_id,
                "status": record["status"],
                "elapsed": record["elapsed"],
                "error_kind": kind,
                "attempts": attempt,
            }
        )


def _cooperative_timeout_record(error: BaseException, elapsed: float) -> dict:
    """The in-process analogue of a hang: the cooperative budget ran out."""
    return {
        "status": "unknown",
        "elapsed": elapsed,
        "correct": True,
        "model_size": None,
        "reason": "unknown: wall-clock timeout (cooperative)",
        "error_kind": None,
        "exception_type": type(error).__name__,
        "traceback": "",
        "transient": False,
        "details": {"verdict_kind": "budget", "timeout_hit": True},
    }


@contextlib.contextmanager
def _graceful_signals():
    """Convert SIGTERM into :class:`CampaignInterrupted` (main thread).

    SIGINT already arrives as KeyboardInterrupt; both are caught at the
    same place so a terminated campaign flushes its journal and returns
    its partial results instead of dying mid-write.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def handler(signum, frame):
        raise CampaignInterrupted(f"signal {signum}")

    previous = signal.signal(signal.SIGTERM, handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


# ---------------------------------------------------------------------------
# in-process execution (the default fast path)


def _execute_inprocess(
    pending: Sequence[TaskSpec],
    policy: ExecPolicy,
    plan: ReproFaultPlan,
    stats: ExecStats,
    results: dict[str, dict],
    journal: Optional[ResultsJournal],
    bus: Optional[EventBus],
    engine_pool,
) -> None:
    monitor: Optional[ProgressMonitor] = None
    if bus is not None and policy.heartbeat_interval > 0:
        monitor = ProgressMonitor(bus, interval=policy.heartbeat_interval)
        monitor.start()

    def heartbeat_tally(event: dict) -> None:
        if event.get("kind") == "heartbeat":
            stats.heartbeats_received += 1
            stats.last_heartbeat = event

    if monitor is not None:
        bus.subscribe(heartbeat_tally)
    try:
        for task in pending:
            _check_injected_interrupt(task, plan, 1)
            attempt = 1
            obs_runtime.task_started(task.task_id)
            tracer = obs_runtime.TRACER
            span = (
                tracer.begin("task", {"task": task.task_id})
                if tracer is not None
                else None
            )
            prof = (
                profile_path(policy.profile_dir, task.task_id)
                if policy.profile_dir
                else None
            )
            record: Optional[dict] = None
            try:
                while True:
                    start = time.monotonic()
                    try:
                        with maybe_profile(prof):
                            plan.fire(
                                task.task_id,
                                task.index,
                                attempt,
                                isolated=False,
                                timeout=task.timeout,
                                mem_limit_mb=policy.mem_limit_mb,
                            )
                            system = task.build_system()
                            record = worker_mod.solve_task(
                                system,
                                task.solver,
                                task.timeout,
                                task.expected_status,
                                engine_pool=engine_pool,
                                solver_opts=policy.solver_opts,
                            )
                    except TransientWorkerFault as error:
                        if attempt <= policy.max_retries:
                            stats.retries += 1
                            attempt += 1
                            time.sleep(
                                policy.backoff(task.task_id, attempt)
                            )
                            continue
                        record = worker_mod.crash_record(
                            error, time.monotonic() - start, transient=True
                        )
                    except CooperativeHang as error:
                        record = _cooperative_timeout_record(
                            error, time.monotonic() - start
                        )
                    except MemoryError as error:
                        record = worker_mod.crash_record(
                            error, time.monotonic() - start
                        )
                    except Exception as error:
                        record = worker_mod.crash_record(
                            error, time.monotonic() - start
                        )
                    break
            finally:
                if span is not None:
                    span.args["status"] = (
                        record.get("status") if record is not None else None
                    )
                    tracer.end(span)
                obs_runtime.task_finished()
            _finish(task, record, attempt, stats, results, journal, bus)
    finally:
        if monitor is not None:
            monitor.stop()


# ---------------------------------------------------------------------------
# isolated execution (worker subprocesses under the watchdog)

_EOF = object()


class _SnapshotStore:
    """Freshest engine snapshot per signature group, ordered by stamp.

    Workers stamp every snapshot they ship with a monotonic per-worker
    sequence seeded from the stamp of the snapshot they warm-started
    from, so when several workers share one fingerprint concurrently
    the store keeps the snapshot that has advanced furthest — not
    merely the one whose message happened to arrive last (the old
    last-write-wins bug: a straggling verdict from a slow cold worker
    could clobber a far fresher snapshot already collected from a
    faster one).  Equal stamps — independent workers racing from the
    same seed — keep the most recent arrival, matching the old
    behaviour where ordering genuinely is a coin toss.
    """

    def __init__(self) -> None:
        self._slots: dict[object, tuple[int, dict]] = {}

    def offer(self, group_key: object, seq: int, snap: dict) -> bool:
        """Store ``snap`` unless a strictly fresher one is held."""
        held = self._slots.get(group_key)
        if held is not None and held[0] > seq:
            return False
        self._slots[group_key] = (seq, snap)
        return True

    def get(self, group_key: object) -> Optional[dict]:
        held = self._slots.get(group_key)
        return held[1] if held is not None else None

    def seq(self, group_key: object) -> int:
        """Stamp of the held snapshot (0 when none): the seed for the
        next worker's own sequence."""
        held = self._slots.get(group_key)
        return held[0] if held is not None else 0


def _execute_isolated(
    pending: Sequence[TaskSpec],
    policy: ExecPolicy,
    plan: ReproFaultPlan,
    stats: ExecStats,
    results: dict[str, dict],
    journal: Optional[ResultsJournal],
    bus: Optional[EventBus],
) -> None:
    attempts = {t.task_id: 1 for t in pending}
    queue: deque[list[TaskSpec]] = deque(_batches(pending, policy))
    # freshest engine snapshot per signature group_key: workers return
    # their engine state alongside verdicts, and the next worker for
    # the same group — a rescheduled remainder after a mid-batch death,
    # a retried survivor — starts from it instead of cold.  Newest wins
    # by the workers' monotonic sequence stamps, not arrival order.
    snapshots = _SnapshotStore()
    while queue:
        batch = queue.popleft()
        for task in batch:
            _check_injected_interrupt(
                task, plan, attempts[task.task_id]
            )
        first = batch[0]
        if attempts[first.task_id] > 1:
            time.sleep(
                policy.backoff(first.task_id, attempts[first.task_id])
            )

        def finish(task: TaskSpec, record: dict) -> None:
            _finish(
                task, record, attempts[task.task_id], stats, results,
                journal, bus,
            )

        retry, reschedule = _run_worker_batch(
            batch, policy, plan, attempts, stats, finish, snapshots, bus
        )
        # retried tasks run next (singleton workers, attempt bumped);
        # rescheduled tasks were bystanders of a batch failure and keep
        # their attempt count.  Survivors are re-batched by group_key so
        # several tasks sharing a fingerprint ride one (warm) worker
        # again instead of degenerating into cold singletons.
        for task in reversed(retry):
            attempts[task.task_id] += 1
            stats.retries += 1
            queue.appendleft([task])
        for regrouped in _batches(reschedule, policy):
            queue.append(regrouped)


def _batches(
    tasks: Sequence[TaskSpec], policy: ExecPolicy
) -> list[list[TaskSpec]]:
    """Group consecutive same-signature tasks when engines are shared."""
    batches: list[list[TaskSpec]] = []
    for task in tasks:
        if (
            policy.share_engines
            and task.group_key is not None
            and batches
            and batches[-1][0].group_key == task.group_key
        ):
            batches[-1].append(task)
        else:
            batches.append([task])
    return batches


def _timeout_hard_record(task: TaskSpec, hard: float) -> dict:
    return {
        "status": "unknown",
        "elapsed": hard,
        "correct": True,
        "model_size": None,
        "reason": (
            f"error:timeout_hard: worker killed after {hard:.1f}s hard "
            f"wall clock (cooperative timeout {task.timeout:g}s)"
        ),
        "error_kind": "timeout_hard",
        "exception_type": None,
        "traceback": "",
        "transient": False,
        "details": {},
    }


def _worker_death_record(
    task: TaskSpec,
    exitcode: Optional[int],
    attempts: int,
    policy: ExecPolicy,
) -> dict:
    if exitcode is not None and exitcode < 0:
        desc = f"killed by signal {-exitcode}"
        if policy.mem_limit_mb and -exitcode == signal.SIGKILL:
            desc += " (possible kernel OOM kill)"
    else:
        desc = f"exit code {exitcode}"
    return {
        "status": "unknown",
        "elapsed": 0.0,
        "correct": True,
        "model_size": None,
        "reason": (
            f"error:crash: worker died without a result ({desc}) "
            f"after {attempts} attempts"
        ),
        "error_kind": "crash",
        "exception_type": None,
        "traceback": "",
        "transient": True,
        "details": {"exitcode": exitcode},
    }


def _kill(proc) -> None:
    if not proc.is_alive():
        proc.join()
        return
    proc.terminate()
    proc.join(timeout=2.0)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=5.0)


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _run_worker_batch(
    batch: list[TaskSpec],
    policy: ExecPolicy,
    plan: ReproFaultPlan,
    attempts: dict[str, int],
    stats: ExecStats,
    finish: Callable[[TaskSpec, dict], None],
    snapshots: Optional[_SnapshotStore] = None,
    bus: Optional[EventBus] = None,
) -> tuple[list[TaskSpec], list[TaskSpec]]:
    """Run one batch in one worker; classify every way it can end.

    Calls ``finish`` for each task that reached a verdict (including
    ``error:timeout_hard`` from the watchdog and terminal worker-death
    crashes) the moment the verdict exists, so an interrupt arriving
    mid-batch loses nothing already decided.  Returns
    ``(retry, reschedule)``: transient failures with budget left, and
    innocent bystanders of a batch failure.

    With engine sharing on, the payload carries the latest engine
    snapshot recorded for the batch's ``group_key`` (warm start), and
    every verdict message coming back may carry the worker's current
    engine snapshot, which replaces the stored one — so whatever the
    worker manages to send before dying seeds its successors.
    Snapshots are supervisor-side state only: they are stripped from
    the record before it reaches the journal.
    """
    ctx = _mp_context()
    parent, child = ctx.Pipe(duplex=False)
    group_key = batch[0].group_key
    warm: Optional[dict] = None
    if (
        policy.share_engines
        and snapshots is not None
        and group_key is not None
    ):
        warm = snapshots.get(group_key)
    payload = {
        "tasks": [
            {
                "task_id": t.task_id,
                "smt_text": t.payload_text(),
                "solver": t.solver,
                "timeout": t.timeout,
                "expected_status": t.expected_status,
                "index": t.index,
                "attempt": attempts[t.task_id],
            }
            for t in batch
        ],
        # a lone rescheduled survivor still builds a pool when it has a
        # snapshot to warm-start from
        "share_engines": policy.share_engines
        and (len(batch) > 1 or warm is not None),
        "mem_limit_mb": policy.mem_limit_mb,
        "fault_plan": plan.encode() if plan else None,
        "solver_opts": policy.solver_opts,
        "engine_snapshot": warm,
        # seed for the worker's own snapshot stamps: its snapshots must
        # outrank the one it warm-started from (see _SnapshotStore)
        "engine_snapshot_seq": (
            snapshots.seq(group_key)
            if snapshots is not None and group_key is not None
            else 0
        ),
        # workers mirror the supervisor's collector configuration with
        # their own in-memory instances; spans/metrics ship back over
        # the pipe and merge here
        "obs": {
            "trace": obs_runtime.TRACER is not None,
            "metrics": obs_runtime.METRICS is not None,
            "heartbeat": policy.heartbeat_interval,
            "profile_dir": policy.profile_dir,
        },
    }
    if warm is not None:
        stats.workers_warm_started += 1

    def collect(record: dict) -> None:
        """Pull supervisor-side freight out of a verdict record."""
        snap = record.pop("engine_snapshot", None)
        snap_seq = record.pop("engine_snapshot_seq", 0)
        if snap is not None and snapshots is not None and group_key is not None:
            snapshots.offer(group_key, int(snap_seq or 0), snap)
            stats.snapshots_collected += 1
        spans = record.pop("obs_spans", None)
        if spans and obs_runtime.TRACER is not None:
            obs_runtime.TRACER.absorb(spans)

    def heartbeat(msg: dict) -> None:
        stats.heartbeats_received += 1
        stats.last_heartbeat = msg
        if bus is not None:
            bus.emit(msg)
    proc = ctx.Process(
        target=worker_mod.worker_entry, args=(child, payload), daemon=True
    )
    retry: list[TaskSpec] = []
    reschedule: list[TaskSpec] = []
    try:
        proc.start()
    except OSError as error:  # fork/spawn failure: transient by nature
        logger.warning("worker start failed (%s); will retry", error)
        parent.close()
        child.close()
        for task in batch:
            if attempts[task.task_id] <= policy.max_retries:
                retry.append(task)
            else:
                finish(
                    task,
                    _worker_death_record(
                        task, None, attempts[task.task_id], policy
                    ),
                )
        return retry, reschedule
    child.close()
    stats.workers_spawned += 1
    try:
        index = 0
        while index < len(batch):
            task = batch[index]
            hard = policy.hard_timeout(task.timeout)
            deadline = time.monotonic() + hard
            msg: object = None
            while msg is None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                if parent.poll(min(remaining, 0.2)):
                    try:
                        msg = parent.recv()
                    except EOFError:
                        msg = _EOF
                if (
                    isinstance(msg, dict)
                    and msg.get("kind") == "heartbeat"
                ):
                    # liveness telemetry, not a verdict: surface it and
                    # keep waiting — deliberately WITHOUT resetting the
                    # watchdog deadline (a hung solver's heartbeat
                    # thread still beats; heartbeats must never keep a
                    # stuck task alive)
                    heartbeat(msg)
                    msg = None
            if msg is None:
                # the hard watchdog: no result within the wall budget
                _kill(proc)
                finish(task, _timeout_hard_record(task, hard))
                reschedule.extend(batch[index + 1:])
                return retry, reschedule
            if msg is _EOF:
                # the worker died without a result for the current task
                proc.join(timeout=5.0)
                if attempts[task.task_id] <= policy.max_retries:
                    retry.append(task)
                else:
                    finish(
                        task,
                        _worker_death_record(
                            task,
                            proc.exitcode,
                            attempts[task.task_id],
                            policy,
                        ),
                    )
                reschedule.extend(batch[index + 1:])
                return retry, reschedule
            assert isinstance(msg, dict)
            collect(msg)
            finish(task, msg)
            index += 1
        # drain the done message (pool counters + worker metrics),
        # stepping over any heartbeats still in flight
        drain_deadline = time.monotonic() + 2.0
        while time.monotonic() < drain_deadline:
            if not parent.poll(drain_deadline - time.monotonic()):
                break
            try:
                done = parent.recv()
            except EOFError:
                break
            if isinstance(done, dict) and done.get("kind") == "heartbeat":
                heartbeat(done)
                continue
            if isinstance(done, dict):
                if done.get("pool_stats"):
                    stats.merge_pool(done["pool_stats"])
                if (
                    done.get("obs_metrics")
                    and obs_runtime.METRICS is not None
                ):
                    obs_runtime.METRICS.merge(done["obs_metrics"])
            break
        proc.join(timeout=5.0)
        return retry, reschedule
    finally:
        parent.close()
        if proc.is_alive():
            _kill(proc)
