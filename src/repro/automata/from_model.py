"""Finite models ↔ tree automata (Sec. 4.2, Theorem 1).

Given a finite structure M, the automaton for predicate P is
``A_P = <|M|, Sigma_F, M(P), tau>`` where the shared transition function is
``tau(f)(x1..xn) = M(f)(x1..xn)``.  Theorem 1: ``A_P`` accepts exactly the
term tuples whose M-values lie in ``M(P)``.  The converse direction
(automaton → finite model) is the isomorphism of Matzinger cited by the
paper; we implement both, which lets hand-written automata (e.g. the STLC
invariant of Sec. 5) be checked as finite models.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Optional

from repro.automata.dfta import DFTA, AutomatonError, State, make_dfta
from repro.logic.adt import ADTSystem
from repro.logic.sorts import FuncSymbol, PredSymbol, Sort
from repro.mace.model import FiniteModel


def shared_transitions(
    model: FiniteModel, adts: ADTSystem
) -> dict[tuple[str, tuple[State, ...]], State]:
    """The shared transition set ``tau`` built from M's function tables.

    Only ADT constructors contribute transitions; auxiliary functions of
    the model (none in the standard pipeline) are ignored.
    """
    transitions: dict[tuple[str, tuple[State, ...]], State] = {}
    for func, table in model.functions.items():
        if not adts.is_constructor(func):
            continue
        for args, value in table.items():
            transitions[(func.name, args)] = value
    return transitions


def model_to_automaton(
    model: FiniteModel, adts: ADTSystem, pred: PredSymbol
) -> DFTA:
    """The automaton ``A_P`` of Theorem 1 for one predicate symbol."""
    relation = model.predicates.get(pred)
    if relation is None:
        raise AutomatonError(f"model does not interpret {pred.name}")
    return make_dfta(
        adts,
        {sort: model.domains[sort] for sort in adts.sorts},
        shared_transitions(model, adts),
        relation,
        pred.arg_sorts,
    )


def model_to_automata(
    model: FiniteModel, adts: ADTSystem, preds: Iterable[PredSymbol]
) -> dict[PredSymbol, DFTA]:
    """Automata for all predicates, sharing one transition table."""
    return {p: model_to_automaton(model, adts, p) for p in preds}


def automata_to_model(
    adts: ADTSystem,
    automata: Mapping[PredSymbol, DFTA],
    *,
    states: Optional[Mapping[Sort, int]] = None,
) -> FiniteModel:
    """Inverse of Theorem 1: read automata as a finite structure.

    All automata must share their state spaces and transitions (as those
    produced from one model do, and as hand-written invariants are).  The
    resulting model interprets constructors by the transition table and
    each predicate by its automaton's final set — evaluating clauses on
    the model is then exactly evaluating them through automata runs.
    """
    if not automata:
        raise AutomatonError("no automata given")
    reference = next(iter(automata.values()))
    for pred, auto in automata.items():
        if dict(auto.states) != dict(reference.states):
            raise AutomatonError(
                f"automaton for {pred.name} has mismatched state spaces"
            )
        if dict(auto.transitions) != dict(reference.transitions):
            raise AutomatonError(
                f"automaton for {pred.name} has mismatched transitions"
            )
        if auto.final_sorts != pred.arg_sorts:
            raise AutomatonError(
                f"automaton for {pred.name} has mismatched final sorts"
            )
    if not reference.is_complete():
        raise AutomatonError(
            "automata must be complete to form a finite model; "
            "apply repro.automata.ops.complete first"
        )
    domains = dict(states or reference.states)
    functions: dict[FuncSymbol, dict[tuple[int, ...], int]] = {}
    for (name, args), result in reference.transitions.items():
        func = adts.constructor(name)
        functions.setdefault(func, {})[args] = result
    predicates: dict[PredSymbol, set[tuple[int, ...]]] = {
        pred: set(auto.finals) for pred, auto in automata.items()
    }
    return FiniteModel(domains, functions, predicates)


def herbrand_relation_member(
    model: FiniteModel, pred: PredSymbol, terms: tuple
) -> bool:
    """Membership in the induced Herbrand relation ``X_P`` of Lemma 2.

    ``X_P = { <t1..tn> | <M[[t1]], ..., M[[tn]]> in M(P) }`` — evaluated
    directly through the model, equivalent to running ``A_P`` (Theorem 1).
    """
    values = tuple(model.eval_term(t) for t in terms)
    return model.holds(pred, values)
