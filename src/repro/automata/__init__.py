"""Deterministic finite tree automata: runs, boolean ops, model conversion."""

from repro.automata.dfta import AutomatonError, DFTA, State, make_dfta
from repro.automata.from_model import (
    automata_to_model,
    herbrand_relation_member,
    model_to_automata,
    model_to_automaton,
    shared_transitions,
)
from repro.automata.nfta import (
    NFTA,
    determinize,
    from_dfta,
    union_dfta,
    union_nfta,
)
from repro.automata.ops import (
    complement,
    complete,
    difference,
    equivalent,
    intersection,
    minimize_1d,
    product,
    subset,
    symmetric_difference,
    trim,
    union,
)

__all__ = [
    "AutomatonError",
    "DFTA",
    "NFTA",
    "determinize",
    "from_dfta",
    "union_dfta",
    "union_nfta",
    "State",
    "automata_to_model",
    "complement",
    "complete",
    "difference",
    "equivalent",
    "herbrand_relation_member",
    "intersection",
    "make_dfta",
    "minimize_1d",
    "model_to_automata",
    "model_to_automaton",
    "product",
    "shared_transitions",
    "subset",
    "symmetric_difference",
    "trim",
    "union",
]
