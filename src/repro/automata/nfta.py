"""Nondeterministic finite tree automata and determinization.

The paper's regular representations are deterministic (Definition 2), but
the closure theory it leans on — "basic results for tree automata are
accumulated in [TATA]" — routinely passes through nondeterminism:
unions of automata with different state spaces, automata read off Horn
rules, and the future-work tree-language extensions all arrive
nondeterministic.  This module supplies

* :class:`NFTA` — transition relations with *sets* of rules per
  left-hand side and possibly several results,
* membership via the standard powerset-run (the set of reachable states
  per subterm),
* :func:`determinize` — the subset construction for tree automata,
  producing a :class:`~repro.automata.dfta.DFTA` over reachable subsets,
* conversions in both directions,

so that Reg-closure arguments (e.g. Prop. 12's "the union lt ∪ gt would
be regular") can be executed rather than cited.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.automata.dfta import DFTA, AutomatonError, State, make_dfta
from repro.logic.adt import ADTSystem
from repro.logic.sorts import Sort
from repro.logic.terms import App, Term


@dataclass(frozen=True)
class NFTA:
    """A nondeterministic finite tree automaton (1-dimensional).

    ``transitions`` maps ``(constructor name, argument states)`` to the
    *set* of possible result states.  Final states are plain states (the
    tuple generalization is not needed: the pipeline's n-automata come
    from finite models and are already deterministic).
    """

    adts: ADTSystem
    states: Mapping[Sort, int]
    transitions: Mapping[tuple[str, tuple[State, ...]], frozenset[State]]
    finals: frozenset[State]
    final_sort: Sort

    def __post_init__(self) -> None:
        for (name, args), results in self.transitions.items():
            func = self.adts.constructor(name)
            if len(args) != func.arity:
                raise AutomatonError(f"transition for {name}: wrong arity")
            for state, sort in zip(args, func.arg_sorts):
                if not 0 <= state < self.states.get(sort, 0):
                    raise AutomatonError(
                        f"transition for {name}: unknown state {state}"
                    )
            for result in results:
                if not 0 <= result < self.states.get(func.result_sort, 0):
                    raise AutomatonError(
                        f"transition for {name}: unknown result {result}"
                    )

    # ------------------------------------------------------------------
    def reachable_set(self, term: Term) -> frozenset[State]:
        """The set of states reachable on ``term`` (the powerset run)."""
        if not isinstance(term, App):
            raise AutomatonError("runs are over ground terms")
        child_sets = [self.reachable_set(a) for a in term.args]
        out: set[State] = set()
        for combo in itertools.product(*child_sets):
            out |= self.transitions.get((term.func.name, combo), frozenset())
        return frozenset(out)

    def accepts(self, term: Term) -> bool:
        if term.sort != self.final_sort:
            raise AutomatonError(
                f"term of sort {term.sort}, automaton over {self.final_sort}"
            )
        return bool(self.reachable_set(term) & self.finals)

    def is_deterministic(self) -> bool:
        return all(len(r) <= 1 for r in self.transitions.values())


def from_dfta(auto: DFTA) -> NFTA:
    """View a 1-dimensional DFTA as an NFTA."""
    if auto.dimension != 1:
        raise AutomatonError("from_dfta requires a 1-automaton")
    return NFTA(
        auto.adts,
        dict(auto.states),
        {
            key: frozenset({value})
            for key, value in auto.transitions.items()
        },
        frozenset(q for (q,) in auto.finals),
        auto.final_sorts[0],
    )


def union_nfta(left: DFTA, right: DFTA) -> NFTA:
    """Disjoint union of two 1-DFTAs as an NFTA (states renumbered).

    Language: ``L(left) ∪ L(right)`` — the textbook construction whose
    determinization exercises the subset machinery end to end.
    """
    a, b = from_dfta(left), from_dfta(right)
    if a.final_sort != b.final_sort:
        raise AutomatonError("union of automata over different sorts")
    states = {
        sort: a.states.get(sort, 0) + b.states.get(sort, 0)
        for sort in set(a.states) | set(b.states)
    }

    def shift(sort: Sort, q: State) -> State:
        return a.states.get(sort, 0) + q

    transitions: dict[tuple[str, tuple[State, ...]], set[State]] = {}
    for (name, args), results in a.transitions.items():
        transitions.setdefault((name, args), set()).update(results)
    for (name, args), results in b.transitions.items():
        func = a.adts.constructor(name)
        shifted_args = tuple(
            shift(s, q) for s, q in zip(func.arg_sorts, args)
        )
        transitions.setdefault((name, shifted_args), set()).update(
            shift(func.result_sort, q) for q in results
        )
    finals = frozenset(a.finals) | frozenset(
        shift(a.final_sort, q) for q in b.finals
    )
    return NFTA(
        a.adts,
        states,
        {k: frozenset(v) for k, v in transitions.items()},
        finals,
        a.final_sort,
    )


def determinize(nfta: NFTA) -> DFTA:
    """Subset construction for tree automata.

    States of the result are the *reachable* subsets of the NFTA's states
    per sort (bottom-up closure), numbered densely; a subset is final iff
    it meets the NFTA's final set.
    """
    adts = nfta.adts
    # iteratively close the family of reachable subsets per sort
    subsets: dict[Sort, dict[frozenset[State], int]] = {
        sort: {} for sort in nfta.states
    }
    transitions: dict[tuple[str, tuple[State, ...]], State] = {}

    def intern(sort: Sort, subset: frozenset[State]) -> tuple[int, bool]:
        table = subsets[sort]
        if subset in table:
            return table[subset], False
        table[subset] = len(table)
        return table[subset], True

    changed = True
    while changed:
        changed = False
        for func in adts.signature.functions.values():
            arg_families = [
                list(subsets[s].items()) for s in func.arg_sorts
            ]
            for combo in itertools.product(*arg_families):
                arg_subsets = tuple(c[0] for c in combo)
                arg_ids = tuple(c[1] for c in combo)
                out: set[State] = set()
                for states in itertools.product(*arg_subsets):
                    out |= nfta.transitions.get(
                        (func.name, states), frozenset()
                    )
                result_id, fresh = intern(
                    func.result_sort, frozenset(out)
                )
                key = (func.name, arg_ids)
                if transitions.get(key) != result_id:
                    transitions[key] = result_id
                    changed = True
                changed = changed or fresh
    states = {sort: max(len(table), 1) for sort, table in subsets.items()}
    finals = frozenset(
        (idx,)
        for subset, idx in subsets[nfta.final_sort].items()
        if subset & nfta.finals
    )
    return make_dfta(
        adts, states, transitions, finals, (nfta.final_sort,)
    )


def union_dfta(left: DFTA, right: DFTA) -> DFTA:
    """Union via NFTA + determinization (alternative to the product
    construction in :mod:`repro.automata.ops`; tests check both agree)."""
    return determinize(union_nfta(left, right))
