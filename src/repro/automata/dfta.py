"""Deterministic finite tree automata over many-sorted constructor signatures.

Implements Definition 2: an ``n``-automaton is a quadruple
``<S, Sigma_F, S_F, Delta>`` whose transition relation has rules
``f(s1, ..., sm) -> s`` with at most one rule per left-hand side.  States
are sorted (each state belongs to one sort's state space), which matches
the finite-model correspondence where states are domain elements of the
model's sorts.

A tuple of ground terms is accepted iff the tuple of reached states is in
the final set (Definition 3); a run that hits a missing rule yields the
sink value ``None`` (the paper's ⊥).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.logic.adt import ADTSystem
from repro.logic.sorts import FuncSymbol, Sort
from repro.logic.terms import App, Term


class AutomatonError(ValueError):
    """Raised on malformed automata (nondeterminism, sort mismatches)."""


State = int


@dataclass(frozen=True)
class DFTA:
    """A deterministic finite tree ``n``-automaton.

    ``states`` maps each sort to its number of states (state spaces are
    ``range(n)`` per sort, mirroring :class:`repro.mace.model.FiniteModel`
    domains).  ``transitions`` maps ``(constructor name, argument states)``
    to the resulting state.  ``finals`` is the set of accepting state
    tuples and ``final_sorts`` records the sort of each tuple position.
    """

    adts: ADTSystem
    states: Mapping[Sort, int]
    transitions: Mapping[tuple[str, tuple[State, ...]], State]
    finals: frozenset[tuple[State, ...]]
    final_sorts: tuple[Sort, ...]

    def __post_init__(self) -> None:
        for (name, args), result in self.transitions.items():
            func = self.adts.constructor(name)
            if len(args) != func.arity:
                raise AutomatonError(
                    f"transition for {name} has wrong arity"
                )
            for state, sort in zip(args, func.arg_sorts):
                if not 0 <= state < self.states.get(sort, 0):
                    raise AutomatonError(
                        f"transition for {name} uses unknown state {state}"
                    )
            if not 0 <= result < self.states.get(func.result_sort, 0):
                raise AutomatonError(
                    f"transition for {name} targets unknown state {result}"
                )
        for final in self.finals:
            if len(final) != len(self.final_sorts):
                raise AutomatonError("final tuple arity mismatch")

    @property
    def dimension(self) -> int:
        """The ``n`` of the ``n``-automaton."""
        return len(self.final_sorts)

    # ------------------------------------------------------------------
    # runs and acceptance
    # ------------------------------------------------------------------
    def run(self, term: Term) -> Optional[State]:
        """``A[t]``: the state reached on ``t``, or ``None`` (⊥)."""
        if not isinstance(term, App):
            raise AutomatonError(f"automata run on ground terms only: {term}")
        arg_states: list[State] = []
        for arg in term.args:
            state = self.run(arg)
            if state is None:
                return None
            arg_states.append(state)
        return self.transitions.get((term.func.name, tuple(arg_states)))

    def accepts(self, *terms: Term) -> bool:
        """Definition 3: the tuple of reached states is final."""
        if len(terms) != self.dimension:
            raise AutomatonError(
                f"{self.dimension}-automaton applied to {len(terms)} terms"
            )
        reached: list[State] = []
        for term, sort in zip(terms, self.final_sorts):
            if term.sort != sort:
                raise AutomatonError(
                    f"term {term} has sort {term.sort}, expected {sort}"
                )
            state = self.run(term)
            if state is None:
                return False
            reached.append(state)
        return tuple(reached) in self.finals

    def is_complete(self) -> bool:
        """Whether every left-hand side has a rule."""
        for func in self.adts.signature.functions.values():
            pools = [range(self.states.get(s, 0)) for s in func.arg_sorts]
            for args in itertools.product(*pools):
                if (func.name, args) not in self.transitions:
                    return False
        return True

    # ------------------------------------------------------------------
    # language exploration
    # ------------------------------------------------------------------
    def reachable_states(self) -> dict[Sort, set[State]]:
        """States reachable by running the automaton on some ground term."""
        reached: dict[Sort, set[State]] = {s: set() for s in self.states}
        changed = True
        while changed:
            changed = False
            for (name, args), result in self.transitions.items():
                func = self.adts.constructor(name)
                if all(
                    a in reached[s]
                    for a, s in zip(args, func.arg_sorts)
                ):
                    if result not in reached[func.result_sort]:
                        reached[func.result_sort].add(result)
                        changed = True
        return reached

    def witness_terms(
        self, *, max_height: int = 6
    ) -> dict[tuple[Sort, State], Term]:
        """A shortest witness term per reachable state (BFS by height)."""
        witness: dict[tuple[Sort, State], Term] = {}
        for _ in range(max_height):
            changed = False
            for (name, args), result in self.transitions.items():
                func = self.adts.constructor(name)
                key = (func.result_sort, result)
                if key in witness:
                    continue
                arg_terms = []
                complete = True
                for a, s in zip(args, func.arg_sorts):
                    term = witness.get((s, a))
                    if term is None:
                        complete = False
                        break
                    arg_terms.append(term)
                if complete:
                    witness[key] = App(func, tuple(arg_terms))
                    changed = True
            if not changed:
                break
        return witness

    def is_empty(self) -> bool:
        """Whether the accepted tuple language is empty."""
        reached = self.reachable_states()
        for final in self.finals:
            if all(
                state in reached[sort]
                for state, sort in zip(final, self.final_sorts)
            ):
                return False
        return True

    def sample_accepted(
        self, *, max_height: int = 6
    ) -> Optional[tuple[Term, ...]]:
        """Some accepted tuple of ground terms, or ``None`` if empty."""
        witness = self.witness_terms(max_height=max_height)
        for final in self.finals:
            terms = []
            ok = True
            for state, sort in zip(final, self.final_sorts):
                term = witness.get((sort, state))
                if term is None:
                    ok = False
                    break
                terms.append(term)
            if ok:
                return tuple(terms)
        return None

    def enumerate_accepted(
        self, *, max_height: int, limit: Optional[int] = None
    ) -> Iterator[tuple[Term, ...]]:
        """All accepted tuples with every component height ≤ ``max_height``."""
        pools = [
            self.adts.terms_up_to_height(sort, max_height)
            for sort in self.final_sorts
        ]
        produced = 0
        for combo in itertools.product(*pools):
            if self.accepts(*combo):
                yield combo
                produced += 1
                if limit is not None and produced >= limit:
                    return

    def describe(self) -> str:
        """Readable transition table in the paper's notation."""
        lines = []
        for (name, args), result in sorted(self.transitions.items()):
            if args:
                lhs = f"{name}({', '.join(f's{a}' for a in args)})"
            else:
                lhs = name
            lines.append(f"{lhs} -> s{result}")
        finals = ", ".join(
            "<" + ", ".join(f"s{q}" for q in final) + ">"
            for final in sorted(self.finals)
        )
        lines.append(f"final: {{{finals}}}")
        return "\n".join(lines)


def make_dfta(
    adts: ADTSystem,
    states: Mapping[Sort, int],
    transitions: Mapping[tuple[str, tuple[State, ...]], State],
    finals: Iterable[tuple[State, ...]],
    final_sorts: Sequence[Sort],
) -> DFTA:
    """Convenience constructor with plain containers."""
    return DFTA(
        adts,
        dict(states),
        dict(transitions),
        frozenset(tuple(f) for f in finals),
        tuple(final_sorts),
    )
