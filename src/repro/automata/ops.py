"""Boolean operations and normalization of tree automata.

Regular tree languages are closed under union, intersection and complement
(Comon et al., cited as [14] in the paper); these closure constructions are
what make the Reg representation class effective — e.g. checking that a
regular invariant candidate is inductive reduces to emptiness of boolean
combinations.  We implement:

* completion (adding sink states copy-on-miss: only sorts that actually
  need one, only functions with missing rules are swept),
* complement (complete + invert finals),
* products (intersection / union / difference on same-signature automata),
  built sparsely: a worklist explores only the *reachable* state pairs
  instead of the full cartesian state space (``dense_product`` keeps the
  textbook construction as the reference the tests compare against),
* trimming (reachable-state pruning with renumbering),
* minimization for 1-automata (Myhill–Nerode style refinement),
* language equivalence / inclusion via product emptiness, with the
  emptiness verdicts memoized in a shared cache (:func:`cached_is_empty`)
  so repeated verification queries against the same invariants are free.
"""

from __future__ import annotations

import itertools
import weakref
from collections import Counter
from typing import Callable, Optional

from repro.automata.dfta import DFTA, AutomatonError, State, make_dfta
from repro.logic.sorts import Sort


def complete(automaton: DFTA) -> DFTA:
    """Route all missing rules to sink states, copy-on-miss.

    The accepted language is unchanged (a sink never joins a final
    tuple), but every run becomes defined, enabling complementation.
    Unlike the textbook construction (:func:`dense_complete`), sinks are
    only added to sorts that transitively need one, and only functions
    with missing rules are swept — an almost-complete automaton pays for
    its few missing rules, not for its full transition space.
    """
    counts = Counter(name for name, _ in automaton.transitions)
    functions = automaton.adts.signature.functions.values()

    def expected(func) -> int:
        n = 1
        for s in func.arg_sorts:
            n *= automaton.states.get(s, 0)
        return n

    missing = [f for f in functions if counts[f.name] != expected(f)]
    if not missing:
        return automaton
    # sorts needing a sink: result sorts of incomplete functions, closed
    # under "a sink argument creates new left-hand sides"
    need = {f.result_sort for f in missing}
    changed = True
    while changed:
        changed = False
        for f in functions:
            if f.result_sort not in need and any(
                s in need for s in f.arg_sorts
            ):
                need.add(f.result_sort)
                changed = True
    states = {
        sort: n + (1 if sort in need else 0)
        for sort, n in automaton.states.items()
    }
    for sort in need:
        states.setdefault(sort, 1)
    sinks = {sort: automaton.states.get(sort, 0) for sort in need}
    transitions = dict(automaton.transitions)
    for func in functions:
        if func not in missing and not any(
            s in need for s in func.arg_sorts
        ):
            continue  # already total and no new sink arguments: copy as-is
        pools = [range(states.get(s, 0)) for s in func.arg_sorts]
        sink = sinks[func.result_sort]
        for args in itertools.product(*pools):
            transitions.setdefault((func.name, args), sink)
    return make_dfta(
        automaton.adts,
        states,
        transitions,
        automaton.finals,
        automaton.final_sorts,
    )


def dense_complete(automaton: DFTA) -> DFTA:
    """Textbook completion: one sink per sort, full transition sweep.

    Kept as the reference implementation the property tests compare the
    copy-on-miss :func:`complete` against.
    """
    if automaton.is_complete():
        return automaton
    states = {sort: n + 1 for sort, n in automaton.states.items()}
    sinks = {sort: automaton.states[sort] for sort in automaton.states}
    transitions: dict[tuple[str, tuple[State, ...]], State] = {}
    for func in automaton.adts.signature.functions.values():
        pools = [range(states.get(s, 0)) for s in func.arg_sorts]
        for args in itertools.product(*pools):
            existing = automaton.transitions.get((func.name, args))
            if existing is not None and all(
                a != sinks[s] for a, s in zip(args, func.arg_sorts)
            ):
                transitions[(func.name, args)] = existing
            else:
                transitions[(func.name, args)] = sinks[func.result_sort]
    return make_dfta(
        automaton.adts,
        states,
        transitions,
        automaton.finals,
        automaton.final_sorts,
    )


def complement(automaton: DFTA) -> DFTA:
    """The automaton accepting exactly the rejected tuples."""
    completed = complete(automaton)
    pools = [range(completed.states[s]) for s in completed.final_sorts]
    finals = frozenset(
        combo
        for combo in itertools.product(*pools)
        if combo not in completed.finals
    )
    return make_dfta(
        completed.adts,
        completed.states,
        completed.transitions,
        finals,
        completed.final_sorts,
    )


def _check_product_operands(left: DFTA, right: DFTA) -> None:
    if left.adts is not right.adts and left.adts.sorts != right.adts.sorts:
        raise AutomatonError("product of automata over different ADT systems")
    if left.final_sorts != right.final_sorts:
        raise AutomatonError("product of automata of different dimensions")


def product(
    left: DFTA,
    right: DFTA,
    combine: Callable[[bool, bool], bool],
) -> DFTA:
    """Product automaton whose finals are chosen by ``combine``.

    Both automata must share the ADT system, dimension and final sorts.
    The construction is on-the-fly: a worklist grows the set of
    *reachable* state pairs bottom-up (semi-naive — each round only
    expands left-hand sides touching a frontier pair), so the result has
    one state per reachable pair instead of the full ``|A| x |B|``
    cartesian space that :func:`dense_product` enumerates.  Completion
    of the operands is virtual: a missing rule reads as a transition
    into that sort's sink, and sink rules are never materialized.
    """
    _check_product_operands(left, right)
    a, b = left, right
    all_sorts = set(a.states) | set(b.states)
    sink_a = {s: a.states.get(s, 0) for s in all_sorts}
    sink_b = {s: b.states.get(s, 0) for s in all_sorts}

    order: dict[Sort, list[tuple[State, State]]] = {
        s: [] for s in all_sorts
    }
    index: dict[Sort, dict[tuple[State, State], State]] = {
        s: {} for s in all_sorts
    }

    def register(sort: Sort, pair: tuple[State, State]) -> State:
        table = index[sort]
        pid = table.get(pair)
        if pid is None:
            pid = len(table)
            table[pair] = pid
            order[sort].append(pair)
        return pid

    def step(func, pairs: tuple[tuple[State, State], ...]) -> State:
        a_args = tuple(p[0] for p in pairs)
        b_args = tuple(p[1] for p in pairs)
        ra = a.transitions.get((func.name, a_args))
        if ra is None:
            ra = sink_a[func.result_sort]
        rb = b.transitions.get((func.name, b_args))
        if rb is None:
            rb = sink_b[func.result_sort]
        return register(func.result_sort, (ra, rb))

    transitions: dict[tuple[str, tuple[State, ...]], State] = {}
    functions = list(a.adts.signature.functions.values())
    frontier_start = {s: 0 for s in all_sorts}
    for func in functions:
        if func.arity == 0:
            transitions[(func.name, ())] = step(func, ())
    while True:
        starts = dict(frontier_start)
        ends = {s: len(order[s]) for s in all_sorts}
        if all(starts[s] == ends[s] for s in all_sorts):
            break
        for func in functions:
            if func.arity == 0:
                continue
            for pivot in range(func.arity):
                # pivot = first argument drawn from the current frontier
                pools: list[list[tuple[State, State]]] = []
                for j, sort in enumerate(func.arg_sorts):
                    if j < pivot:
                        pools.append(order[sort][: starts[sort]])
                    elif j == pivot:
                        pools.append(
                            order[sort][starts[sort] : ends[sort]]
                        )
                    else:
                        pools.append(order[sort][: ends[sort]])
                for pairs in itertools.product(*pools):
                    encoded = tuple(
                        index[s][p]
                        for s, p in zip(func.arg_sorts, pairs)
                    )
                    transitions[(func.name, encoded)] = step(func, pairs)
        frontier_start = ends

    finals: set[tuple[State, ...]] = set()
    for pairs in itertools.product(
        *[order[s] for s in a.final_sorts]
    ):
        a_tuple = tuple(p[0] for p in pairs)
        b_tuple = tuple(p[1] for p in pairs)
        if combine(a_tuple in a.finals, b_tuple in b.finals):
            finals.add(
                tuple(
                    index[s][p]
                    for s, p in zip(a.final_sorts, pairs)
                )
            )
    states = {s: max(len(order[s]), 1) for s in all_sorts}
    return make_dfta(a.adts, states, transitions, finals, a.final_sorts)


def dense_product(
    left: DFTA,
    right: DFTA,
    combine: Callable[[bool, bool], bool],
) -> DFTA:
    """Reference product over the full cartesian state space.

    Materializes both completions and every state pair; kept for the
    property tests that pin :func:`product` to the textbook semantics.
    """
    _check_product_operands(left, right)
    a, b = dense_complete(left), dense_complete(right)
    states: dict[Sort, int] = {}
    for sort in a.states:
        states[sort] = a.states[sort] * b.states.get(sort, 0)

    def encode(sort: Sort, qa: State, qb: State) -> State:
        return qa * b.states[sort] + qb

    transitions: dict[tuple[str, tuple[State, ...]], State] = {}
    for func in a.adts.signature.functions.values():
        arg_pools = [
            itertools.product(range(a.states[s]), range(b.states[s]))
            for s in func.arg_sorts
        ]
        for pairs in itertools.product(*[list(p) for p in arg_pools]):
            a_args = tuple(p[0] for p in pairs)
            b_args = tuple(p[1] for p in pairs)
            ra = a.transitions.get((func.name, a_args))
            rb = b.transitions.get((func.name, b_args))
            if ra is None or rb is None:
                continue  # cannot happen on completed automata
            encoded_args = tuple(
                encode(s, qa, qb)
                for s, (qa, qb) in zip(func.arg_sorts, pairs)
            )
            transitions[(func.name, encoded_args)] = encode(
                func.result_sort, ra, rb
            )
    finals: set[tuple[State, ...]] = set()
    pools = [
        itertools.product(range(a.states[s]), range(b.states[s]))
        for s in a.final_sorts
    ]
    for pairs in itertools.product(*[list(p) for p in pools]):
        a_tuple = tuple(p[0] for p in pairs)
        b_tuple = tuple(p[1] for p in pairs)
        if combine(a_tuple in a.finals, b_tuple in b.finals):
            finals.add(
                tuple(
                    encode(s, qa, qb)
                    for s, (qa, qb) in zip(a.final_sorts, pairs)
                )
            )
    return make_dfta(a.adts, states, transitions, finals, a.final_sorts)


def intersection(left: DFTA, right: DFTA) -> DFTA:
    return product(left, right, lambda x, y: x and y)


def union(left: DFTA, right: DFTA) -> DFTA:
    return product(left, right, lambda x, y: x or y)


def difference(left: DFTA, right: DFTA) -> DFTA:
    return product(left, right, lambda x, y: x and not y)


def symmetric_difference(left: DFTA, right: DFTA) -> DFTA:
    return product(left, right, lambda x, y: x != y)


# ----------------------------------------------------------------------
# memoized emptiness — shared by equivalent / subset / model verification
# ----------------------------------------------------------------------
_EMPTY_CACHE: dict[tuple, bool] = {}
_EMPTY_CACHE_LIMIT = 4096
_EMPTY_CACHE_STATS = {"hits": 0, "misses": 0}


# fingerprints are cached per DFTA object (automata are frozen), so a
# repeated memoized query does not re-sort the full transition table;
# entries self-evict when their automaton is collected (the weakref
# callback below), so a long campaign cannot accumulate dead entries
_KEY_CACHE: dict[int, tuple] = {}


def _evict_key(cache_id: int) -> None:
    _KEY_CACHE.pop(cache_id, None)


def language_key(automaton: DFTA) -> tuple:
    """A hashable fingerprint of the automaton's language data.

    Two structurally identical automata (same constructor signature,
    transition table, state counts, finals) define the same language,
    so their emptiness verdict can be shared even across distinct
    ``DFTA`` objects.  The signature component matters because the
    cache is process-global: different problems may reuse sort and
    constructor *names* with different arity/sort layouts.
    """
    cached = _KEY_CACHE.get(id(automaton))
    if cached is not None and cached[0]() is automaton:
        return cached[1]
    signature = tuple(
        sorted(
            (
                f.name,
                tuple(s.name for s in f.arg_sorts),
                f.result_sort.name,
            )
            for f in automaton.adts.signature.functions.values()
        )
    )
    key = (
        signature,
        tuple(sorted((s.name, n) for s, n in automaton.states.items())),
        tuple(sorted(automaton.transitions.items())),
        tuple(sorted(automaton.finals)),
        tuple(s.name for s in automaton.final_sorts),
    )
    cache_id = id(automaton)
    try:
        # the callback drops the entry the moment the automaton dies —
        # without it, a dead entry lived until the same id() happened to
        # be reused, a leak exactly in long multi-problem campaigns
        ref = weakref.ref(
            automaton, lambda _r, cache_id=cache_id: _evict_key(cache_id)
        )
    except TypeError:
        return key
    if len(_KEY_CACHE) >= _EMPTY_CACHE_LIMIT:
        _KEY_CACHE.clear()
    _KEY_CACHE[cache_id] = (ref, key)
    return key


def memoized(key: tuple, compute: Callable[[], bool]) -> bool:
    """Look ``key`` up in the shared verdict cache, computing on miss.

    One access path for every memoized language query (emptiness,
    equivalence, inclusion, clause checks), so the eviction policy and
    hit/miss accounting cannot drift apart between them.  The cache is
    bounded and cleared wholesale when full; :func:`op_cache_info` /
    :func:`clear_op_caches` expose it for tests and long-running
    services.
    """
    hit = _EMPTY_CACHE.get(key)
    if hit is not None:
        _EMPTY_CACHE_STATS["hits"] += 1
        return hit
    _EMPTY_CACHE_STATS["misses"] += 1
    if len(_EMPTY_CACHE) >= _EMPTY_CACHE_LIMIT:
        _EMPTY_CACHE.clear()
    result = compute()
    _EMPTY_CACHE[key] = result
    return result


def cached_is_empty(automaton: DFTA) -> bool:
    """Memoized :meth:`DFTA.is_empty`.

    Verification asks the same emptiness queries over and over (each
    clause of a system against the same candidate invariants), so the
    verdicts are cached by structural fingerprint.
    """
    return memoized(
        ("empty", language_key(automaton)), automaton.is_empty
    )


def op_cache_info() -> dict[str, int]:
    """Hit/miss/size counters of the shared emptiness cache."""
    return {
        "hits": _EMPTY_CACHE_STATS["hits"],
        "misses": _EMPTY_CACHE_STATS["misses"],
        "size": len(_EMPTY_CACHE),
        "fingerprints": len(_KEY_CACHE),
    }


def clear_op_caches() -> None:
    """Drop the shared verdict and fingerprint caches."""
    _EMPTY_CACHE.clear()
    _KEY_CACHE.clear()
    _EMPTY_CACHE_STATS["hits"] = 0
    _EMPTY_CACHE_STATS["misses"] = 0


def _cached_product_empty(
    tag: str,
    left: DFTA,
    right: DFTA,
    combine: Callable[[bool, bool], bool],
) -> bool:
    """Product emptiness memoized on the *operand* fingerprints.

    Keying on the operands (rather than the built product) means a
    repeated query skips the product construction itself — the dominant
    cost — and keeps cache keys small.
    """
    return memoized(
        (tag, language_key(left), language_key(right)),
        lambda: product(left, right, combine).is_empty(),
    )


def language_universal(automaton: DFTA) -> bool:
    """Whether the automaton accepts *every* tuple (complement empty).

    Memoized on the operand fingerprint, so repeated queries (e.g. the
    verifier re-checking the same fact clause) skip the complement
    construction, not just the emptiness fixpoint.
    """
    return memoized(
        ("univ", language_key(automaton)),
        lambda: complement(automaton).is_empty(),
    )


def equivalent(left: DFTA, right: DFTA) -> bool:
    """Language equivalence via symmetric-difference emptiness."""
    return _cached_product_empty(
        "equiv", left, right, lambda x, y: x != y
    )


def subset(left: DFTA, right: DFTA) -> bool:
    """Language inclusion ``L(left) ⊆ L(right)``."""
    return _cached_product_empty(
        "subset", left, right, lambda x, y: x and not y
    )


def trim(automaton: DFTA) -> DFTA:
    """Restrict to reachable states and renumber densely."""
    reached = automaton.reachable_states()
    mapping: dict[tuple[Sort, State], State] = {}
    states: dict[Sort, int] = {}
    for sort, qs in reached.items():
        for i, q in enumerate(sorted(qs)):
            mapping[(sort, q)] = i
        states[sort] = max(len(qs), 1)  # keep sorts inhabited by >= 1 state
    # ensure sorts with no reachable states still map state 0
    for sort in automaton.states:
        if not reached[sort]:
            states[sort] = 1
    transitions: dict[tuple[str, tuple[State, ...]], State] = {}
    for (name, args), result in automaton.transitions.items():
        func = automaton.adts.constructor(name)
        if not all(
            (s, a) in mapping for s, a in zip(func.arg_sorts, args)
        ):
            continue
        if (func.result_sort, result) not in mapping:
            continue
        new_args = tuple(
            mapping[(s, a)] for s, a in zip(func.arg_sorts, args)
        )
        transitions[(name, new_args)] = mapping[(func.result_sort, result)]
    finals = frozenset(
        tuple(mapping[(s, q)] for s, q in zip(automaton.final_sorts, final))
        for final in automaton.finals
        if all(
            (s, q) in mapping
            for s, q in zip(automaton.final_sorts, final)
        )
    )
    return make_dfta(
        automaton.adts, states, transitions, finals, automaton.final_sorts
    )


def minimize_1d(automaton: DFTA) -> DFTA:
    """Minimize a complete 1-automaton by partition refinement.

    Standard Myhill–Nerode refinement lifted to trees: start from the
    final/non-final split of the accepting sort (all states of other sorts
    start in one block per sort), refine until each transition's target
    block is determined by the argument blocks.
    """
    if automaton.dimension != 1:
        raise AutomatonError("minimize_1d requires a 1-automaton")
    auto = complete(trim(automaton))
    target_sort = auto.final_sorts[0]
    final_states = {q for (q,) in auto.finals}

    block: dict[tuple[Sort, State], int] = {}
    next_block = 0
    for sort in sorted(auto.states, key=lambda s: s.name):
        if sort == target_sort:
            for q in range(auto.states[sort]):
                block[(sort, q)] = (
                    next_block if q in final_states else next_block + 1
                )
            next_block += 2
        else:
            for q in range(auto.states[sort]):
                block[(sort, q)] = next_block
            next_block += 1

    changed = True
    while changed:
        changed = False
        signatures: dict[tuple[Sort, State], tuple] = {}
        for sort in auto.states:
            for q in range(auto.states[sort]):
                signatures[(sort, q)] = (block[(sort, q)],)
        # extend signatures with behaviour under every context position
        for (name, args), result in auto.transitions.items():
            func = auto.adts.constructor(name)
            for i, (s, a) in enumerate(zip(func.arg_sorts, args)):
                ctx = (
                    name,
                    i,
                    tuple(
                        block[(ss, aa)]
                        for j, (ss, aa) in enumerate(
                            zip(func.arg_sorts, args)
                        )
                        if j != i
                    ),
                    block[(func.result_sort, result)],
                )
                signatures[(s, a)] = signatures[(s, a)] + (ctx,)
        # canonicalize signatures (sort the context components)
        canon = {
            key: (sig[0], tuple(sorted(sig[1:])))
            for key, sig in signatures.items()
        }
        fresh: dict[tuple[Sort, tuple], int] = {}
        new_block: dict[tuple[Sort, State], int] = {}
        counter = 0
        for sort in sorted(auto.states, key=lambda s: s.name):
            for q in range(auto.states[sort]):
                key = (sort, canon[(sort, q)])
                if key not in fresh:
                    fresh[key] = counter
                    counter += 1
                new_block[(sort, q)] = fresh[key]
        if new_block != block:
            block = new_block
            changed = True

    # renumber blocks per sort
    per_sort: dict[Sort, dict[int, int]] = {}
    states: dict[Sort, int] = {}
    for sort in auto.states:
        blocks = sorted(
            {block[(sort, q)] for q in range(auto.states[sort])}
        )
        per_sort[sort] = {b: i for i, b in enumerate(blocks)}
        states[sort] = len(blocks)

    def rep(sort: Sort, q: State) -> State:
        return per_sort[sort][block[(sort, q)]]

    transitions: dict[tuple[str, tuple[State, ...]], State] = {}
    for (name, args), result in auto.transitions.items():
        func = auto.adts.constructor(name)
        new_args = tuple(
            rep(s, a) for s, a in zip(func.arg_sorts, args)
        )
        transitions[(name, new_args)] = rep(func.result_sort, result)
    finals = frozenset((rep(target_sort, q),) for q in final_states)
    return make_dfta(auto.adts, states, transitions, finals, auto.final_sorts)
