"""Boolean operations and normalization of tree automata.

Regular tree languages are closed under union, intersection and complement
(Comon et al., cited as [14] in the paper); these closure constructions are
what make the Reg representation class effective — e.g. checking that a
regular invariant candidate is inductive reduces to emptiness of boolean
combinations.  We implement:

* completion (adding a sink state),
* complement (complete + invert finals),
* products (intersection / union / difference on same-signature automata),
* trimming (reachable-state pruning with renumbering),
* minimization for 1-automata (Myhill–Nerode style refinement),
* language equivalence via symmetric-difference emptiness.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.automata.dfta import DFTA, AutomatonError, State, make_dfta
from repro.logic.sorts import Sort


def complete(automaton: DFTA) -> DFTA:
    """Add a sink state per sort and route all missing rules to it.

    The accepted language is unchanged (the sink never joins a final
    tuple), but every run becomes defined, enabling complementation.
    """
    if automaton.is_complete():
        return automaton
    states = {sort: n + 1 for sort, n in automaton.states.items()}
    sinks = {sort: automaton.states[sort] for sort in automaton.states}
    transitions: dict[tuple[str, tuple[State, ...]], State] = {}
    for func in automaton.adts.signature.functions.values():
        pools = [range(states.get(s, 0)) for s in func.arg_sorts]
        for args in itertools.product(*pools):
            existing = automaton.transitions.get((func.name, args))
            if existing is not None and all(
                a != sinks[s] for a, s in zip(args, func.arg_sorts)
            ):
                transitions[(func.name, args)] = existing
            else:
                transitions[(func.name, args)] = sinks[func.result_sort]
    return make_dfta(
        automaton.adts,
        states,
        transitions,
        automaton.finals,
        automaton.final_sorts,
    )


def complement(automaton: DFTA) -> DFTA:
    """The automaton accepting exactly the rejected tuples."""
    completed = complete(automaton)
    pools = [range(completed.states[s]) for s in completed.final_sorts]
    finals = frozenset(
        combo
        for combo in itertools.product(*pools)
        if combo not in completed.finals
    )
    return make_dfta(
        completed.adts,
        completed.states,
        completed.transitions,
        finals,
        completed.final_sorts,
    )


def product(
    left: DFTA,
    right: DFTA,
    combine: Callable[[bool, bool], bool],
) -> DFTA:
    """Product automaton whose finals are chosen by ``combine``.

    Both automata must share the ADT system, dimension and final sorts.
    Operands are completed first so that boolean identities hold exactly.
    """
    if left.adts is not right.adts and left.adts.sorts != right.adts.sorts:
        raise AutomatonError("product of automata over different ADT systems")
    if left.final_sorts != right.final_sorts:
        raise AutomatonError("product of automata of different dimensions")
    a, b = complete(left), complete(right)
    states: dict[Sort, int] = {}
    for sort in a.states:
        states[sort] = a.states[sort] * b.states.get(sort, 0)

    def encode(sort: Sort, qa: State, qb: State) -> State:
        return qa * b.states[sort] + qb

    transitions: dict[tuple[str, tuple[State, ...]], State] = {}
    for func in a.adts.signature.functions.values():
        arg_pools = [
            itertools.product(range(a.states[s]), range(b.states[s]))
            for s in func.arg_sorts
        ]
        for pairs in itertools.product(*[list(p) for p in arg_pools]):
            a_args = tuple(p[0] for p in pairs)
            b_args = tuple(p[1] for p in pairs)
            ra = a.transitions.get((func.name, a_args))
            rb = b.transitions.get((func.name, b_args))
            if ra is None or rb is None:
                continue  # cannot happen on completed automata
            encoded_args = tuple(
                encode(s, qa, qb)
                for s, (qa, qb) in zip(func.arg_sorts, pairs)
            )
            transitions[(func.name, encoded_args)] = encode(
                func.result_sort, ra, rb
            )
    finals: set[tuple[State, ...]] = set()
    pools = [
        itertools.product(range(a.states[s]), range(b.states[s]))
        for s in a.final_sorts
    ]
    for pairs in itertools.product(*[list(p) for p in pools]):
        a_tuple = tuple(p[0] for p in pairs)
        b_tuple = tuple(p[1] for p in pairs)
        if combine(a_tuple in a.finals, b_tuple in b.finals):
            finals.add(
                tuple(
                    encode(s, qa, qb)
                    for s, (qa, qb) in zip(a.final_sorts, pairs)
                )
            )
    return make_dfta(a.adts, states, transitions, finals, a.final_sorts)


def intersection(left: DFTA, right: DFTA) -> DFTA:
    return product(left, right, lambda x, y: x and y)


def union(left: DFTA, right: DFTA) -> DFTA:
    return product(left, right, lambda x, y: x or y)


def difference(left: DFTA, right: DFTA) -> DFTA:
    return product(left, right, lambda x, y: x and not y)


def symmetric_difference(left: DFTA, right: DFTA) -> DFTA:
    return product(left, right, lambda x, y: x != y)


def equivalent(left: DFTA, right: DFTA) -> bool:
    """Language equivalence via symmetric-difference emptiness."""
    return symmetric_difference(left, right).is_empty()


def subset(left: DFTA, right: DFTA) -> bool:
    """Language inclusion ``L(left) ⊆ L(right)``."""
    return difference(left, right).is_empty()


def trim(automaton: DFTA) -> DFTA:
    """Restrict to reachable states and renumber densely."""
    reached = automaton.reachable_states()
    mapping: dict[tuple[Sort, State], State] = {}
    states: dict[Sort, int] = {}
    for sort, qs in reached.items():
        for i, q in enumerate(sorted(qs)):
            mapping[(sort, q)] = i
        states[sort] = max(len(qs), 1)  # keep sorts inhabited by >= 1 state
    # ensure sorts with no reachable states still map state 0
    for sort in automaton.states:
        if not reached[sort]:
            states[sort] = 1
    transitions: dict[tuple[str, tuple[State, ...]], State] = {}
    for (name, args), result in automaton.transitions.items():
        func = automaton.adts.constructor(name)
        if not all(
            (s, a) in mapping for s, a in zip(func.arg_sorts, args)
        ):
            continue
        if (func.result_sort, result) not in mapping:
            continue
        new_args = tuple(
            mapping[(s, a)] for s, a in zip(func.arg_sorts, args)
        )
        transitions[(name, new_args)] = mapping[(func.result_sort, result)]
    finals = frozenset(
        tuple(mapping[(s, q)] for s, q in zip(automaton.final_sorts, final))
        for final in automaton.finals
        if all(
            (s, q) in mapping
            for s, q in zip(automaton.final_sorts, final)
        )
    )
    return make_dfta(
        automaton.adts, states, transitions, finals, automaton.final_sorts
    )


def minimize_1d(automaton: DFTA) -> DFTA:
    """Minimize a complete 1-automaton by partition refinement.

    Standard Myhill–Nerode refinement lifted to trees: start from the
    final/non-final split of the accepting sort (all states of other sorts
    start in one block per sort), refine until each transition's target
    block is determined by the argument blocks.
    """
    if automaton.dimension != 1:
        raise AutomatonError("minimize_1d requires a 1-automaton")
    auto = complete(trim(automaton))
    target_sort = auto.final_sorts[0]
    final_states = {q for (q,) in auto.finals}

    block: dict[tuple[Sort, State], int] = {}
    next_block = 0
    for sort in sorted(auto.states, key=lambda s: s.name):
        if sort == target_sort:
            for q in range(auto.states[sort]):
                block[(sort, q)] = (
                    next_block if q in final_states else next_block + 1
                )
            next_block += 2
        else:
            for q in range(auto.states[sort]):
                block[(sort, q)] = next_block
            next_block += 1

    changed = True
    while changed:
        changed = False
        signatures: dict[tuple[Sort, State], tuple] = {}
        for sort in auto.states:
            for q in range(auto.states[sort]):
                signatures[(sort, q)] = (block[(sort, q)],)
        # extend signatures with behaviour under every context position
        for (name, args), result in auto.transitions.items():
            func = auto.adts.constructor(name)
            for i, (s, a) in enumerate(zip(func.arg_sorts, args)):
                ctx = (
                    name,
                    i,
                    tuple(
                        block[(ss, aa)]
                        for j, (ss, aa) in enumerate(
                            zip(func.arg_sorts, args)
                        )
                        if j != i
                    ),
                    block[(func.result_sort, result)],
                )
                signatures[(s, a)] = signatures[(s, a)] + (ctx,)
        # canonicalize signatures (sort the context components)
        canon = {
            key: (sig[0], tuple(sorted(sig[1:])))
            for key, sig in signatures.items()
        }
        fresh: dict[tuple[Sort, tuple], int] = {}
        new_block: dict[tuple[Sort, State], int] = {}
        counter = 0
        for sort in sorted(auto.states, key=lambda s: s.name):
            for q in range(auto.states[sort]):
                key = (sort, canon[(sort, q)])
                if key not in fresh:
                    fresh[key] = counter
                    counter += 1
                new_block[(sort, q)] = fresh[key]
        if new_block != block:
            block = new_block
            changed = True

    # renumber blocks per sort
    per_sort: dict[Sort, dict[int, int]] = {}
    states: dict[Sort, int] = {}
    for sort in auto.states:
        blocks = sorted(
            {block[(sort, q)] for q in range(auto.states[sort])}
        )
        per_sort[sort] = {b: i for i, b in enumerate(blocks)}
        states[sort] = len(blocks)

    def rep(sort: Sort, q: State) -> State:
        return per_sort[sort][block[(sort, q)]]

    transitions: dict[tuple[str, tuple[State, ...]], State] = {}
    for (name, args), result in auto.transitions.items():
        func = auto.adts.constructor(name)
        new_args = tuple(
            rep(s, a) for s, a in zip(func.arg_sorts, args)
        )
        transitions[(name, new_args)] = rep(func.result_sort, result)
    finals = frozenset((rep(target_sort, q),) for q in final_states)
    return make_dfta(auto.adts, states, transitions, finals, auto.final_sorts)
