"""Process-global observability switchboard.

Instrumentation points throughout the pipeline check two module
attributes — :data:`TRACER` and :data:`METRICS` — and do nothing when
both are ``None`` (the default).  That makes the disabled path one
attribute load and branch per *call site* (never per propagated
literal; the solver's phase timers guard on a cached local), which
``benchmarks/bench_obs.py`` gates at ≤5% campaign overhead.

The module also keeps the **live in-flight state** heartbeats sample:
the current task id and weak references to the stats objects the
solver and finder are mutating right now.  Registration is a single
assignment per solve/search, cheap enough to do unconditionally, so
live progress works even when tracing and metrics are off.

Worker subprocesses are forked mid-campaign and would inherit the
parent's file-backed tracer (same fd!): :func:`forget` drops every
inherited global without touching the file, after which the worker
configures its own in-memory collectors from the payload.
"""

from __future__ import annotations

import os
import time
import weakref
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanTracer

#: the active span tracer, or None (disabled)
TRACER: Optional[SpanTracer] = None

#: the active metrics registry, or None (disabled)
METRICS: Optional[MetricsRegistry] = None

# live in-flight state for heartbeats / progress sampling
_task: Optional[str] = None
_task_started: Optional[float] = None
_solver_stats = None  # weakref to the active solver's SatStats
_finder_stats = None  # weakref to the active search's FinderStats


def configure(
    *,
    trace_path: Optional[str] = None,
    trace: bool = False,
    metrics: bool = False,
) -> None:
    """Turn collectors on: a file-backed tracer (``trace_path``), an
    in-memory tracer (``trace=True``; workers drain it over the pipe),
    and/or a metrics registry.  Omitted collectors keep their state."""
    global TRACER, METRICS
    if trace_path is not None:
        TRACER = SpanTracer(trace_path)
    elif trace:
        TRACER = SpanTracer()
    if metrics:
        METRICS = MetricsRegistry()


def enabled() -> bool:
    return TRACER is not None or METRICS is not None


def reset() -> None:
    """Close and clear every collector (end of run, test isolation)."""
    global TRACER, METRICS
    if TRACER is not None:
        TRACER.close()
    TRACER = None
    METRICS = None
    task_finished()


def forget() -> None:
    """Drop inherited collectors without closing them (post-fork: the
    file handle belongs to the parent process)."""
    global TRACER, METRICS
    TRACER = None
    METRICS = None
    task_finished()


# ---------------------------------------------------------------------------
# live in-flight state (the heartbeat source)


def task_started(task_id: str) -> None:
    global _task, _task_started, _solver_stats, _finder_stats
    _task = task_id
    _task_started = time.monotonic()
    _solver_stats = None
    _finder_stats = None


def task_finished() -> None:
    global _task, _task_started, _solver_stats, _finder_stats
    _task = None
    _task_started = None
    _solver_stats = None
    _finder_stats = None


def watch_solver_stats(stats) -> None:
    """Point the live sample at the SatStats being mutated right now."""
    global _solver_stats
    try:
        _solver_stats = weakref.ref(stats)
    except TypeError:  # exotic backend stats object: live counts absent
        _solver_stats = None


def watch_finder_stats(stats) -> None:
    global _finder_stats
    try:
        _finder_stats = weakref.ref(stats)
    except TypeError:
        _finder_stats = None


def rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB (POSIX only)."""
    try:
        import resource
    except ImportError:
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def live_sample() -> dict:
    """One heartbeat-shaped snapshot of the in-flight task.

    Fields (heartbeat event schema v1): ``task`` (id or None),
    ``elapsed`` (seconds in the task), ``conflicts`` / ``propagations``
    (cumulative solver counters), ``vectors`` (size vectors dispatched:
    attempted + skipped-by-core), ``rss_kb``, ``pid``.  The emitter
    adds ``conflicts_per_s`` from consecutive samples.
    """
    sample: dict = {
        "task": _task,
        "elapsed": (
            time.monotonic() - _task_started
            if _task_started is not None
            else 0.0
        ),
        "conflicts": 0,
        "propagations": 0,
        "vectors": 0,
        "rss_kb": rss_kb(),
        "pid": os.getpid(),
    }
    stats = _solver_stats() if _solver_stats is not None else None
    if stats is not None:
        sample["conflicts"] = stats.conflicts
        sample["propagations"] = stats.propagations
    finder = _finder_stats() if _finder_stats is not None else None
    if finder is not None:
        sample["vectors"] = finder.attempts + finder.vectors_skipped
    return sample
