"""Metrics registry: counters, gauges and timing histograms.

One registry per run collects everything the layers already count —
the stats dataclasses (``SatStats``, ``FinderStats``, ``PoolStats``,
``ExecStats``) publish their numeric fields via :meth:`publish`, phase
timers land as ``phase.*`` counters, and per-task wall times feed the
``task.elapsed`` histogram — yielding one merged machine-readable
snapshot per run (the CLI's ``--metrics FILE``).

Snapshot schema (``METRICS_SCHEMA_VERSION`` = 1)::

    {"schema": "metrics", "version": 1,
     "counters":   {name: number},        # additive
     "gauges":     {name: number},        # last write wins
     "histograms": {name: {"count", "total", "min", "max",
                           "buckets": [{"le": bound, "count": n}, ...]}}

Counters are additive by design: worker subprocesses build their own
registry and ship its snapshot back with the done message, and the
supervisor :meth:`merge`-s it into the campaign's — sums stay sums.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

METRICS_SCHEMA_VERSION = 1

#: upper bounds (seconds) of the timing-histogram buckets; one overflow
#: bucket (``"+inf"``) is always appended
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    60.0,
)


class Histogram:
    """Fixed-bucket timing histogram with min/max/total tracking."""

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def as_dict(self) -> dict:
        buckets = [
            {"le": bound, "count": self.counts[i]}
            for i, bound in enumerate(self.bounds)
        ]
        buckets.append({"le": "+inf", "count": self.counts[-1]})
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }

    def merge(self, snap: dict) -> None:
        """Fold another histogram's :meth:`as_dict` into this one
        (bucket layouts must match — both sides use the defaults)."""
        self.count += int(snap.get("count", 0))
        self.total += float(snap.get("total", 0.0))
        if snap.get("min") is not None:
            self.min = (
                snap["min"] if self.min is None
                else min(self.min, snap["min"])
            )
        if snap.get("max") is not None:
            self.max = (
                snap["max"] if self.max is None
                else max(self.max, snap["max"])
            )
        theirs = snap.get("buckets") or []
        for i, bucket in enumerate(theirs):
            if i < len(self.counts):
                self.counts[i] += int(bucket.get("count", 0))


class MetricsRegistry:
    """Counters / gauges / timing histograms with a versioned snapshot."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._hists: dict[str, Histogram] = {}

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def timing(self, name: str, seconds: float) -> None:
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = Histogram()
        hist.observe(seconds)

    def publish(self, prefix: str, mapping: Optional[dict]) -> None:
        """Fold a stats dataclass dict into the counters.

        Numeric fields add under ``prefix.field`` (so publishing many
        per-problem ``FinderStats`` dicts naturally sums them); nested
        dicts recurse with a dotted prefix; bools, strings and None are
        labels or flags, not measurements, and are skipped.
        """
        for key, value in (mapping or {}).items():
            name = f"{prefix}.{key}"
            if isinstance(value, bool) or value is None:
                continue
            if isinstance(value, (int, float)):
                self.inc(name, value)
            elif isinstance(value, dict):
                self.publish(name, value)

    def merge(self, snap: Optional[dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one
        (counters add, gauges last-write-wins, histograms merge)."""
        if not snap:
            return
        for name, value in (snap.get("counters") or {}).items():
            self.inc(name, value)
        for name, value in (snap.get("gauges") or {}).items():
            self.gauge(name, value)
        for name, hist_snap in (snap.get("histograms") or {}).items():
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = Histogram()
            hist.merge(hist_snap)

    def snapshot(self) -> dict:
        return {
            "schema": "metrics",
            "version": METRICS_SCHEMA_VERSION,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.as_dict()
                for name, hist in self._hists.items()
            },
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
