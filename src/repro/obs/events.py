"""The campaign event bus: finished tasks, heartbeats, progress lines.

The supervisor used to push bare strings at a ``Callable[[str], None]``
callback; it now emits structured events here and the legacy callback
rides an adapter that renders byte-identical lines.  Event schema
(``EVENT_SCHEMA_VERSION`` = 1) — plain dicts with a ``kind``:

``task_finished``
    ``{"kind": "task_finished", "task": str, "status": str,
    "elapsed": float, "error_kind": str | None, "attempts": int}`` —
    one per verdict, emitted by the supervisor's finish path.

``heartbeat``
    ``{"kind": "heartbeat", "v": 1, "task": str, "elapsed": float,
    "conflicts": int, "propagations": int, "vectors": int,
    "conflicts_per_s": float, "rss_kb": int | None, "pid": int}`` —
    periodic in-flight samples.  Isolated workers send them over the
    verdict pipe; in-process runs get them from a
    :class:`ProgressMonitor` sampling thread.

Subscribers are plain callables; exceptions propagate to the emitter,
matching the old direct-callback behaviour.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.obs import runtime

EVENT_SCHEMA_VERSION = 1

Progress = Callable[[str], None]


class EventBus:
    """Synchronous fan-out of event dicts to subscribers."""

    def __init__(self) -> None:
        self._subscribers: list[Callable[[dict], None]] = []

    def subscribe(self, fn: Callable[[dict], None]) -> Callable:
        self._subscribers.append(fn)
        return fn

    def emit(self, event: dict) -> None:
        for fn in list(self._subscribers):
            fn(event)


def legacy_line_subscriber(progress: Progress) -> Callable[[dict], None]:
    """Adapt ``task_finished`` events to the historical progress lines.

    Renders exactly what the supervisor's ``progress`` callback used to
    receive (``"<task>: <status> (<elapsed>s)[ [<error_kind>]]"``), so
    existing callers — the CLI passes ``print`` — see no change.
    """

    def on_event(event: dict) -> None:
        if event.get("kind") != "task_finished":
            return
        kind = event.get("error_kind")
        suffix = f" [{kind}]" if kind else ""
        progress(
            f"{event['task']}: {event['status']} "
            f"({event['elapsed']:.2f}s){suffix}"
        )

    return on_event


class HeartbeatRenderer:
    """Throttled one-line rendering of ``heartbeat`` events.

    At most one line per ``min_interval`` seconds regardless of the
    heartbeat rate, so a 10 Hz worker stream does not flood a terminal.
    ``renders`` counts lines actually written (tests assert on it).
    """

    def __init__(
        self, write: Progress, *, min_interval: float = 1.0
    ) -> None:
        self._write = write
        self._min_interval = min_interval
        self._last = 0.0
        self.renders = 0

    def __call__(self, event: dict) -> None:
        if event.get("kind") != "heartbeat":
            return
        now = time.monotonic()
        if self.renders and now - self._last < self._min_interval:
            return
        self._last = now
        self.renders += 1
        rss = event.get("rss_kb")
        rss_note = f", rss {rss} KiB" if rss is not None else ""
        self._write(
            f"[progress] {event.get('task')}: "
            f"{event.get('elapsed', 0.0):.1f}s, "
            f"{event.get('conflicts', 0)} conflicts "
            f"({event.get('conflicts_per_s', 0.0):.0f}/s), "
            f"{event.get('vectors', 0)} vectors{rss_note}"
        )


def heartbeat_event(
    sample: dict, previous: Optional[dict] = None
) -> dict:
    """Shape a :func:`repro.obs.runtime.live_sample` into a heartbeat
    event, deriving ``conflicts_per_s`` from the previous sample."""
    rate = 0.0
    if previous is not None and previous.get("task") == sample.get("task"):
        dt = sample.get("elapsed", 0.0) - previous.get("elapsed", 0.0)
        if dt > 0:
            rate = (
                sample.get("conflicts", 0) - previous.get("conflicts", 0)
            ) / dt
    return {
        "kind": "heartbeat",
        "v": EVENT_SCHEMA_VERSION,
        "conflicts_per_s": max(rate, 0.0),
        **sample,
    }


class ProgressMonitor(threading.Thread):
    """In-process heartbeat source: samples the live runtime state on an
    interval and emits heartbeat events onto a bus.

    Used when there is no worker pipe to carry heartbeats (the plain
    and supervised in-process paths, and the ``solve`` verb).  Daemon
    thread; :meth:`stop` joins it.
    """

    def __init__(self, bus: EventBus, *, interval: float = 1.0) -> None:
        super().__init__(name="repro-obs-progress", daemon=True)
        self._bus = bus
        self._interval = interval
        # not named _stop: threading.Thread calls self._stop() internally
        self._halt = threading.Event()

    def run(self) -> None:
        previous: Optional[dict] = None
        while not self._halt.wait(self._interval):
            sample = runtime.live_sample()
            if sample.get("task") is None:
                previous = None
                continue
            self._bus.emit(heartbeat_event(sample, previous))
            previous = sample

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)
