"""Hierarchical span tracer with Chrome ``trace_event`` export.

A span is one timed region of work with a name, a parent, and optional
attributes; nesting follows the call structure (``campaign > task >
solve > vector``).  The two phase levels below a vector — propagate /
analyze / minimize from the SAT solver's phase timers, encode from the
finder — are emitted as *aggregate* child spans: one synthetic span per
vector carrying the summed duration and call count, because recording
every ``_propagate`` call individually (hundreds of thousands per
solve) would dwarf the work being measured.

Record schema (``TRACE_SCHEMA_VERSION`` = 1), one JSON object per JSONL
line::

    {"kind": "span", "v": 1, "name": str, "cat": str,
     "id": "pid:seq", "parent": "pid:seq" | None, "pid": int,
     "ts": float,   # wall-clock microseconds since the epoch
     "dur": float,  # microseconds, monotonic-derived
     "args": dict}  # span attributes; aggregates carry "count" and
                    # "aggregate": true

A file-backed tracer streams records as spans finish; an in-memory
tracer (worker subprocesses) buffers them for :meth:`SpanTracer.drain`,
and the supervisor :meth:`SpanTracer.absorb`-s them into the campaign's
file — span ids embed the emitting pid, so merged traces stay unique
and Chrome renders one timeline lane per worker.

Convert a trace for chrome://tracing (or https://ui.perfetto.dev)::

    python -m repro.obs.tracer run-trace.jsonl run-trace.chrome.json
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from typing import Iterator, Optional, Sequence, TextIO

TRACE_SCHEMA_VERSION = 1

#: record discriminator, future-proofing the JSONL stream against
#: non-span record kinds (counter samples, instant events)
TRACE_KIND = "span"


class _OpenSpan:
    """A begun-but-unfinished span (hand back to :meth:`SpanTracer.end`)."""

    __slots__ = ("name", "cat", "sid", "parent", "ts_us", "t0", "args")

    def __init__(self, name, cat, sid, parent, ts_us, t0, args):
        self.name = name
        self.cat = cat
        self.sid = sid
        self.parent = parent
        self.ts_us = ts_us
        self.t0 = t0
        self.args = args


class SpanTracer:
    """Low-overhead span recorder (single producer thread per process).

    ``path=None`` buffers records in memory (see :meth:`drain`); a path
    appends JSONL lines as spans close.  The tracer itself is never in
    any hot loop — instrumentation sites guard on the process-global
    :data:`repro.obs.runtime.TRACER` being non-None, so a disabled run
    pays one attribute load per site.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._handle: Optional[TextIO] = (
            open(path, "w", encoding="utf-8") if path else None
        )
        self._records: list[dict] = []
        self._stack: list[_OpenSpan] = []
        self._seq = 0
        self._pid = os.getpid()

    # -- span lifecycle ---------------------------------------------------
    def begin(
        self, name: str, args: Optional[dict] = None, cat: str = "repro"
    ) -> _OpenSpan:
        self._seq += 1
        span = _OpenSpan(
            name,
            cat,
            f"{self._pid}:{self._seq}",
            self._stack[-1].sid if self._stack else None,
            time.time() * 1e6,
            time.monotonic(),
            args if args is not None else {},
        )
        self._stack.append(span)
        return span

    def end(self, span: _OpenSpan) -> None:
        dur_us = (time.monotonic() - span.t0) * 1e6
        # tolerate out-of-order ends (an exception unwound past inner
        # begins): close everything the span encloses
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self._emit(
            {
                "kind": TRACE_KIND,
                "v": TRACE_SCHEMA_VERSION,
                "name": span.name,
                "cat": span.cat,
                "id": span.sid,
                "parent": span.parent,
                "pid": self._pid,
                "ts": span.ts_us,
                "dur": dur_us,
                "args": span.args,
            }
        )

    @contextlib.contextmanager
    def span(
        self, name: str, args: Optional[dict] = None, cat: str = "repro"
    ) -> Iterator[_OpenSpan]:
        handle = self.begin(name, args, cat)
        try:
            yield handle
        finally:
            self.end(handle)

    def aggregate(
        self,
        name: str,
        seconds: float,
        count: int = 1,
        args: Optional[dict] = None,
    ) -> None:
        """Emit a completed summary span under the current stack top.

        Placed so it *ends* now: phase totals are read after the work
        they measure, and a trailing placement keeps aggregate siblings
        from visually stacking on the lane's left edge.
        """
        self._seq += 1
        dur_us = seconds * 1e6
        payload = {"aggregate": True, "count": count}
        if args:
            payload.update(args)
        self._emit(
            {
                "kind": TRACE_KIND,
                "v": TRACE_SCHEMA_VERSION,
                "name": name,
                "cat": "phase",
                "id": f"{self._pid}:{self._seq}",
                "parent": self._stack[-1].sid if self._stack else None,
                "pid": self._pid,
                "ts": time.time() * 1e6 - dur_us,
                "dur": dur_us,
                "args": payload,
            }
        )

    # -- record transport -------------------------------------------------
    def _emit(self, record: dict) -> None:
        if self._handle is not None:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
        else:
            self._records.append(record)

    def drain(self) -> list[dict]:
        """Take (and clear) the buffered records of an in-memory tracer."""
        records, self._records = self._records, []
        return records

    def absorb(self, records: Sequence[dict]) -> None:
        """Adopt finished records from another process's tracer verbatim
        (ids embed the originating pid, so no remapping is needed)."""
        for record in records:
            if isinstance(record, dict) and record.get("kind") == TRACE_KIND:
                self._emit(record)

    def close(self) -> None:
        # close any spans an interrupt left open, so the file is whole
        while self._stack:
            self.end(self._stack[-1])
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ---------------------------------------------------------------------------
# loading + Chrome trace_event export


def load_trace(path: str) -> list[dict]:
    """Read a JSONL trace back as a list of span records.

    A truncated final line (a killed run) is dropped silently, matching
    the results journal's tolerance; other malformed lines raise.
    """
    records: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):
                continue
            raise
        if payload.get("kind") == TRACE_KIND:
            records.append(payload)
    return records


def to_chrome(records: Sequence[dict]) -> dict:
    """Render span records as a Chrome ``trace_event`` JSON object.

    Complete ("ph": "X") events with timestamps rebased to the earliest
    span, one pid lane per originating process; loads directly in
    chrome://tracing and Perfetto.
    """
    base = min((r["ts"] for r in records), default=0.0)
    events = [
        {
            "name": r["name"],
            "cat": r.get("cat", "repro"),
            "ph": "X",
            "ts": r["ts"] - base,
            "dur": r["dur"],
            "pid": r.get("pid", 0),
            "tid": r.get("pid", 0),
            "args": r.get("args", {}),
        }
        for r in records
    ]
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(jsonl_path: str, out_path: str) -> int:
    """Convert a JSONL trace file to Chrome JSON; returns event count."""
    chrome = to_chrome(load_trace(jsonl_path))
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(chrome, handle)
    return len(chrome["traceEvents"])


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.tracer",
        description="Convert a repro JSONL span trace to Chrome "
        "trace_event JSON (open in chrome://tracing or Perfetto)",
    )
    parser.add_argument("trace", help="JSONL trace written by --trace")
    parser.add_argument("out", help="Chrome trace_event JSON to write")
    args = parser.parse_args(argv)
    count = write_chrome(args.trace, args.out)
    print(f"{args.out}: {count} events")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
