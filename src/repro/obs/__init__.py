"""Unified observability layer: spans, metrics, events, live progress.

Zero-dependency telemetry for every layer of the pipeline (SAT solver →
incremental finder → engine pool → supervised exec → harness):

* :mod:`repro.obs.tracer` — hierarchical span tracer (``campaign >
  task > solve > vector > propagate/analyze/minimize/encode``) recorded
  to JSONL and exportable as Chrome ``trace_event`` JSON;
* :mod:`repro.obs.metrics` — counters / gauges / timing histograms the
  existing stats dataclasses (``SatStats``, ``FinderStats``,
  ``PoolStats``, ``ExecStats``) publish into, yielding one merged
  machine-readable snapshot per run;
* :mod:`repro.obs.events` — the event bus behind campaign progress:
  finished-task events, worker heartbeats, throttled rendering;
* :mod:`repro.obs.runtime` — the process-global switchboard all
  instrumentation points check.  Everything is a no-op (one attribute
  load and branch) until :func:`repro.obs.runtime.configure` turns a
  collector on; ``benchmarks/bench_obs.py`` gates the disabled overhead
  at ≤5%.
* :mod:`repro.obs.profiler` — optional per-task cProfile capture with a
  pstats dump (the CLI's ``--profile DIR``).

Schemas (span records, heartbeat events, metrics snapshots) are
versioned like the engine snapshot schemas; see ``docs/OBSERVABILITY.md``
for the field reference and a how-to for viewing traces.
"""

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventBus,
    HeartbeatRenderer,
    ProgressMonitor,
    heartbeat_event,
    legacy_line_subscriber,
)
from repro.obs.metrics import METRICS_SCHEMA_VERSION, MetricsRegistry
from repro.obs.profiler import maybe_profile, profile_path
from repro.obs.tracer import (
    TRACE_SCHEMA_VERSION,
    SpanTracer,
    load_trace,
    to_chrome,
    write_chrome,
)

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EventBus",
    "HeartbeatRenderer",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "ProgressMonitor",
    "SpanTracer",
    "TRACE_SCHEMA_VERSION",
    "heartbeat_event",
    "legacy_line_subscriber",
    "load_trace",
    "maybe_profile",
    "profile_path",
    "to_chrome",
    "write_chrome",
]
