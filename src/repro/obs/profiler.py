"""Optional per-task cProfile capture (the CLI's ``--profile DIR``).

Each profiled task dumps a binary pstats file named after its task id;
inspect with the standard library::

    python -m pstats profiles/suite_prob_ringen.prof
    % sort cumtime
    % stats 20

Profiling is orthogonal to the tracer/metrics switchboard: it is
driven purely by the caller handing a path in, so the no-profile path
costs one ``None`` check.
"""

from __future__ import annotations

import contextlib
import os
import re
from typing import Iterator, Optional


def profile_path(directory: str, task_id: str) -> str:
    """The pstats dump path for one task (id sanitized for filesystems)."""
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", task_id).strip("_") or "task"
    return os.path.join(directory, f"{safe}.prof")


@contextlib.contextmanager
def maybe_profile(path: Optional[str]) -> Iterator[None]:
    """Profile the block into ``path`` (pstats format); no-op on None.

    The dump happens even when the block raises — a crashing task's
    profile is exactly the one worth reading.
    """
    if not path:
        yield
        return
    import cProfile

    prof = cProfile.Profile()
    prof.enable()
    try:
        yield
    finally:
        prof.disable()
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        prof.dump_stats(path)
