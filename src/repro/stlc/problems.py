"""The 23 hand-written type-theory problems of Sec. 8 ("Other experiments").

The paper reports 23 inhabitation/typability problems, "intractable for
all the solvers, except the finite model finder".  We regenerate the suite
as 23 goal types covering the relevant spectrum:

* classical non-tautologies (uninhabited; the ℐ-style regular invariant
  proves safety — RInGen's finite-model phase succeeds),
* classically-but-not-intuitionistically valid types (Peirce-like:
  uninhabited but with no small regular invariant — everything diverges),
* inhabited types (the assertion is false; refutation needs a typing
  derivation witness, out of reach for bounded search with the
  quantifier-alternating query — everything diverges).

Each problem carries its ground truth so the harness can score solvers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.chc.clauses import CHCSystem
from repro.logic.terms import Term
from repro.stlc.adts import arrow, prim_p, prim_q
from repro.stlc.vc import GoalBuilder, typecheck_vc


@dataclass
class StlcProblem:
    """One inhabitation problem with its expected classification."""

    name: str
    goal: GoalBuilder
    # ground truth for the CHC system (SAT = uninhabited at all a, b)
    expected: str  # "sat" | "unsat" | "divergent"
    category: str  # "non-tautology" | "classical-only" | "inhabited"

    def system(self) -> CHCSystem:
        return typecheck_vc(self.goal, name=f"stlc-{self.name}")


def _goal(builder: Callable[[Term, Term], Term]) -> GoalBuilder:
    return builder


def stlc_problems() -> list[StlcProblem]:
    """The 23-problem suite."""
    A = lambda x, y: arrow(x, y)
    problems = [
        # --- classical non-tautologies: uninhabited, regular invariant ---
        StlcProblem("arr-ab-a", _goal(lambda a, b: A(A(a, b), a)),
                    "sat", "non-tautology"),
        StlcProblem("atom-a", _goal(lambda a, b: a),
                    "sat", "non-tautology"),
        StlcProblem("a-to-b", _goal(lambda a, b: A(a, b)),
                    "sat", "non-tautology"),
        StlcProblem("b-to-a", _goal(lambda a, b: A(b, a)),
                    "sat", "non-tautology"),
        StlcProblem("ab-to-ba", _goal(lambda a, b: A(A(a, b), A(b, a))),
                    "sat", "non-tautology"),
        StlcProblem("arr-ba-b", _goal(lambda a, b: A(A(b, a), b)),
                    "sat", "non-tautology"),
        StlcProblem("double-neg-like",
                    _goal(lambda a, b: A(A(A(a, b), b), a)),
                    "sat", "non-tautology"),
        StlcProblem("deep-left",
                    _goal(lambda a, b: A(A(A(A(a, b), a), b), a)),
                    "sat", "non-tautology"),
        StlcProblem("mixed-1",
                    _goal(lambda a, b: A(A(a, a), b)),
                    "sat", "non-tautology"),
        StlcProblem("mixed-2",
                    _goal(lambda a, b: A(b, A(A(a, b), a))),
                    "sat", "non-tautology"),
        # --- classical-only tautologies: uninhabited, tool diverges ---
        StlcProblem("peirce",
                    _goal(lambda a, b: A(A(A(a, b), a), a)),
                    "divergent", "classical-only"),
        StlcProblem("peirce-swap",
                    _goal(lambda a, b: A(A(A(b, a), b), b)),
                    "divergent", "classical-only"),
        StlcProblem("peirce-inst",
                    _goal(lambda a, b: A(A(A(a, prim_q()), a), a)),
                    "divergent", "classical-only"),
        # --- inhabited types: the assertion is violated ---
        StlcProblem("identity", _goal(lambda a, b: A(a, a)),
                    "unsat", "inhabited"),
        StlcProblem("konst", _goal(lambda a, b: A(a, A(b, a))),
                    "unsat", "inhabited"),
        StlcProblem("apply",
                    _goal(lambda a, b: A(A(a, b), A(a, b))),
                    "unsat", "inhabited"),
        StlcProblem("flip-konst", _goal(lambda a, b: A(a, A(b, b))),
                    "unsat", "inhabited"),
        StlcProblem("s-combinator-ish",
                    _goal(lambda a, b: A(A(a, A(a, b)), A(a, A(a, b)))),
                    "unsat", "inhabited"),
        StlcProblem("weak-peirce",
                    _goal(lambda a, b: A(A(A(A(a, b), a), a), A(A(a, b), a))),
                    "unsat", "inhabited"),
        StlcProblem("id-ground-p",
                    _goal(lambda a, b: A(prim_p(), prim_p())),
                    "unsat", "inhabited"),
        StlcProblem("id-ground-q",
                    _goal(lambda a, b: A(prim_q(), prim_q())),
                    "unsat", "inhabited"),
        StlcProblem("konst-ground",
                    _goal(lambda a, b: A(prim_p(), A(prim_q(), prim_p()))),
                    "unsat", "inhabited"),
        StlcProblem("chain",
                    _goal(lambda a, b: A(a, A(A(a, b), b))),
                    "unsat", "inhabited"),
    ]
    assert len(problems) == 23, f"expected 23 problems, got {len(problems)}"
    return problems
