"""ADT declarations for the STLC case study (Sec. 5).

The program sketch of the paper fixes four ADTs::

    Var  ::= x | y
    Type ::= arrow(Type, Type) | p | q        (primitive types)
    Expr ::= var(Var) | abs(Var, Expr) | app(Expr, Expr)
    Env  ::= empty | cons(Var, Type, Env)

Two variables and two primitive types suffice for every example in the
paper (the goal types mention at most two type metavariables).
"""

from __future__ import annotations

from repro.logic.adt import ADT, ADTSystem
from repro.logic.sorts import FuncSymbol, Sort
from repro.logic.terms import App, Term, Var as LogicVar

VAR = Sort("Var")
TYPE = Sort("Type")
EXPR = Sort("Expr")
ENV = Sort("Env")

VAR_X = FuncSymbol("vx", (), VAR)
VAR_Y = FuncSymbol("vy", (), VAR)

PRIM_P = FuncSymbol("p", (), TYPE)
PRIM_Q = FuncSymbol("q", (), TYPE)
ARROW = FuncSymbol("arrow", (TYPE, TYPE), TYPE)

EVAR = FuncSymbol("var", (VAR,), EXPR)
ABS = FuncSymbol("abs", (VAR, EXPR), EXPR)
APP_E = FuncSymbol("app", (EXPR, EXPR), EXPR)

EMPTY = FuncSymbol("empty", (), ENV)
CONS_ENV = FuncSymbol("cons", (VAR, TYPE, ENV), ENV)


def stlc_adts() -> ADTSystem:
    """The four-sort ADT system of the case study."""
    return ADTSystem(
        [
            ADT(VAR, (VAR_X, VAR_Y)),
            ADT(TYPE, (PRIM_P, PRIM_Q, ARROW)),
            ADT(EXPR, (EVAR, ABS, APP_E)),
            ADT(ENV, (EMPTY, CONS_ENV)),
        ]
    )


# -- term builders -----------------------------------------------------
def vx() -> Term:
    return App(VAR_X)


def vy() -> Term:
    return App(VAR_Y)


def prim_p() -> Term:
    return App(PRIM_P)


def prim_q() -> Term:
    return App(PRIM_Q)


def arrow(dom: Term, cod: Term) -> Term:
    return App(ARROW, (dom, cod))


def evar(v: Term) -> Term:
    return App(EVAR, (v,))


def abs_(v: Term, body: Term) -> Term:
    return App(ABS, (v, body))


def app_(fn: Term, arg: Term) -> Term:
    return App(APP_E, (fn, arg))


def empty() -> Term:
    return App(EMPTY)


def cons_env(v: Term, t: Term, rest: Term) -> Term:
    return App(CONS_ENV, (v, t, rest))


def env_of(bindings: list[tuple[Term, Term]]) -> Term:
    """An Env term from a list of (variable, type) bindings."""
    out = empty()
    for v, t in reversed(bindings):
        out = cons_env(v, t, out)
    return out
