"""The paper's hand-built STLC invariant (Sec. 5) and its semantics.

The invariant ℐ over-approximating the typing relation:

    ℐ = { <Γ, e, t> | for all propositional interpretations M,
                       either M ⊨ t, or M ̸⊨ u for some type u in Γ }

with types read as propositional formulas (atomic types are variables,
``arrow`` is implication) — the Curry-Howard / classical-tautology
argument.  The paper represents ℐ by the 6-state tree automaton with
transition table reproduced below; we provide that automaton both as a
:class:`~repro.automata.dfta.DFTA` and as the corresponding finite model
(so it can be checked exactly against the VC's clauses, including the
quantifier-alternating query).
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.automata.dfta import DFTA, make_dfta
from repro.logic.sorts import FuncSymbol, PredSymbol
from repro.logic.terms import App, Term
from repro.mace.model import FiniteModel
from repro.stlc.adts import (
    ABS,
    APP_E,
    ARROW,
    CONS_ENV,
    EMPTY,
    ENV,
    EVAR,
    EXPR,
    PRIM_P,
    PRIM_Q,
    TYPE,
    VAR,
    VAR_X,
    VAR_Y,
    stlc_adts,
)
from repro.stlc.vc import TYPECHECK

# state conventions (Type): 0 = "false under M", 1 = "true under M"
# (Env): 0 = "no false type in Γ" (paper's ∉), 1 = "some false type" (∈)


def invariant_automaton() -> DFTA:
    """The paper's automaton A with L(A) = ℐ (projected to <Γ, t>).

    Transition table from Sec. 5, with the propositional interpretation
    fixed to "every primitive type is false" — the specific M the finite
    model finder chose; any single M yields an inductive invariant, and
    this one is enough to kill the goal ``(a→b)→a``.
    """
    adts = stlc_adts()
    transitions = {
        ("vx", ()): 0,
        ("vy", ()): 0,
        ("p", ()): 0,
        ("q", ()): 0,
        ("var", (0,)): 0,
        ("abs", (0, 0)): 0,
        ("app", (0, 0)): 0,
        ("arrow", (1, 0)): 0,
        ("arrow", (0, 0)): 1,
        ("arrow", (0, 1)): 1,
        ("arrow", (1, 1)): 1,
        ("empty", ()): 0,
        # cons(v, u, env): track whether some type in Γ is false (state 1)
        ("cons", (0, 0, 0)): 1,  # u false -> some false type
        ("cons", (0, 0, 1)): 1,
        ("cons", (0, 1, 0)): 0,  # u true, none false before
        ("cons", (0, 1, 1)): 1,
    }
    finals = [
        (1, 0, 0),  # some type in Γ false  -> accept regardless of t
        (1, 0, 1),
        (0, 0, 1),  # Γ all-true and M ⊨ t
    ]
    return make_dfta(
        adts,
        {VAR: 1, TYPE: 2, EXPR: 1, ENV: 2},
        transitions,
        finals,
        (ENV, EXPR, TYPE),
    )


def invariant_model() -> FiniteModel:
    """The finite-model view of the invariant automaton.

    Besides ``typeCheck``, the preprocessed VC mentions the ``diseq``
    predicates of Sec. 4.4; interpreting them by the *full* relation is a
    sound over-approximation (Lemma 4 allows any superset of true
    disequality on the reachable elements), and with one-element Var/Expr
    domains it is also the only choice that satisfies the constructor
    rules.
    """
    from repro.chc.transform import diseq_symbol

    auto = invariant_automaton()
    functions: dict[FuncSymbol, dict[tuple[int, ...], int]] = {}
    adts = stlc_adts()
    for (name, args), value in auto.transitions.items():
        functions.setdefault(adts.constructor(name), {})[args] = value
    predicates: dict[PredSymbol, set[tuple[int, ...]]] = {
        TYPECHECK: set(auto.finals)
    }
    domains = dict(auto.states)
    for sort in (VAR, TYPE, EXPR, ENV):
        rel = {
            pair
            for pair in itertools.product(
                range(domains[sort]), repeat=2
            )
        }
        predicates[diseq_symbol(sort)] = rel
    return FiniteModel(domains, functions, predicates)


# ----------------------------------------------------------------------
# semantic view of ℐ (used to cross-check the automaton)
# ----------------------------------------------------------------------
Interpretation = dict[str, bool]


def interpretations() -> Iterator[Interpretation]:
    """All propositional interpretations of the two primitive types."""
    for p_val, q_val in itertools.product((False, True), repeat=2):
        yield {"p": p_val, "q": q_val}


def type_truth(t: Term, interp: Interpretation) -> bool:
    """``M ⊨ t``: types as propositional formulas (arrow = implication)."""
    if isinstance(t, App) and t.func == ARROW:
        return (not type_truth(t.args[0], interp)) or type_truth(
            t.args[1], interp
        )
    if isinstance(t, App) and t.func.arity == 0:
        return interp[t.func.name]
    raise ValueError(f"not a ground Type term: {t}")


def env_types(env: Term) -> list[Term]:
    """The types stored in an Env term, outermost first."""
    out = []
    while isinstance(env, App) and env.func == CONS_ENV:
        out.append(env.args[1])
        env = env.args[2]
    return out


def in_invariant(env: Term, expr: Term, t: Term) -> bool:
    """Membership in ℐ (quantifying over *all* interpretations M)."""
    for interp in interpretations():
        if not in_invariant_under(env, expr, t, interp):
            return False
    return True


def in_invariant_under(
    env: Term, expr: Term, t: Term, interp: Interpretation
) -> bool:
    """Membership in ℐ_M for one fixed interpretation M.

    ``ℐ = ⋂_M ℐ_M`` and each ``ℐ_M`` is itself an inductive invariant;
    :func:`invariant_automaton` realizes ``ℐ_M`` for the all-false M (its
    two Type states are exactly "false/true under that M"), which is what
    a *finite* automaton with two Type states can track — and enough to
    refute the ``(a→b)→a`` goal."""
    return type_truth(t, interp) or any(
        not type_truth(u, interp) for u in env_types(env)
    )


def is_classical_tautology(t: Term) -> bool:
    """Whether a ground Type term is a classical propositional tautology."""
    return all(type_truth(t, interp) for interp in interpretations())
