"""Reference STLC type checker and inhabitant search.

An executable version of the ``typeCheck`` program of Sec. 5 (the least
model of its verification conditions) plus a small inhabitation prover —
the ground truth against which the invariant ℐ and RInGen's models are
compared by the tests, and the engine behind the 23 type-theory problems
of Sec. 8's "Other experiments".
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from repro.logic.terms import App, Term
from repro.stlc.adts import (
    ABS,
    APP_E,
    ARROW,
    CONS_ENV,
    EMPTY,
    EVAR,
    abs_,
    app_,
    arrow,
    cons_env,
    empty,
    evar,
    prim_p,
    prim_q,
    vx,
    vy,
)


def lookup(env: Term, v: Term) -> Iterator[Term]:
    """All types bound to ``v`` in ``env`` (outermost binding first).

    The paper's ``typeCheck`` can *skip* a matching binding through its
    second clause (the ``v ≠ v' ∨ t ≠ t'`` guard allows skipping when the
    type differs), so lookup yields every binding of ``v``.
    """
    while isinstance(env, App) and env.func == CONS_ENV:
        if env.args[0] == v:
            yield env.args[1]
        env = env.args[2]


def type_checks(env: Term, expr: Term, t: Term, *, fuel: int = 64) -> bool:
    """The least-model typing relation ``Γ ⊢ e : t`` (STLC, paper rules)."""
    if fuel <= 0:
        return False
    if not isinstance(expr, App):
        raise ValueError(f"not a ground Expr term: {expr}")
    if expr.func == EVAR:
        return any(bound == t for bound in lookup(env, expr.args[0]))
    if expr.func == ABS:
        if not (isinstance(t, App) and t.func == ARROW):
            return False
        v, body = expr.args
        dom, cod = t.args
        return type_checks(
            cons_env(v, dom, env), body, cod, fuel=fuel - 1
        )
    if expr.func == APP_E:
        e1, e2 = expr.args
        # infer candidate argument types by enumerating the subterm's
        # possible types from the environment and goal structure
        for u in candidate_types(env, e2, t):
            if type_checks(env, e2, u, fuel=fuel - 1) and type_checks(
                env, e1, arrow(u, t), fuel=fuel - 1
            ):
                return True
        return False
    raise ValueError(f"unknown Expr constructor {expr.func.name}")


def candidate_types(env: Term, expr: Term, goal: Term) -> list[Term]:
    """A finite candidate set for the existential ``u`` of the app rule.

    Complete for the examples used here: every type occurring (as a
    subterm) in the environment or the goal, closed once under arrows.
    """
    seen: set[Term] = set()
    stack: list[Term] = [goal]
    e = env
    while isinstance(e, App) and e.func == CONS_ENV:
        stack.append(e.args[1])
        e = e.args[2]
    while stack:
        t = stack.pop()
        if t in seen:
            continue
        seen.add(t)
        if isinstance(t, App) and t.func == ARROW:
            stack.extend(t.args)
    return sorted(seen, key=str)


def expressions_up_to(depth: int) -> Iterator[Term]:
    """Closed-ish STLC terms over variables {x, y} up to ``depth``."""
    variables = [vx(), vy()]
    layers: list[list[Term]] = [[evar(v) for v in variables]]
    yield from layers[0]
    for _ in range(depth - 1):
        previous = [t for layer in layers for t in layer]
        fresh: list[Term] = []
        for v in variables:
            for body in layers[-1]:
                fresh.append(abs_(v, body))
        for f, a in itertools.product(layers[-1], previous):
            fresh.append(app_(f, a))
            if len(fresh) > 2000:
                break
        layers.append(fresh)
        yield from fresh


def find_inhabitant(
    t: Term, *, max_depth: int = 4
) -> Optional[Term]:
    """A closed term of type ``t``, or ``None`` if none exists up to the
    search depth.  ``λx.x : a -> a`` style witnesses for the tests."""
    for expr in expressions_up_to(max_depth):
        if type_checks(empty(), expr, t):
            return expr
    return None


# a few nameable types used by tests and the problem generator
def t_identity() -> Term:
    return arrow(prim_p(), prim_p())


def t_konst() -> Term:
    return arrow(prim_p(), arrow(prim_q(), prim_p()))


def t_not_taut() -> Term:
    return arrow(arrow(prim_p(), prim_q()), prim_p())


def t_peirce() -> Term:
    return arrow(arrow(arrow(prim_p(), prim_q()), prim_p()), prim_p())
