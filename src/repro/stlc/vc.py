"""Verification conditions of the typeCheck program (Fig. 2).

``typecheck_vc(goal)`` builds the five-clause CHC system whose last clause
asserts that no closed term inhabits ``goal(a, b)`` for *all* types a, b —
the quantifier alternation of the paper: the assertion
``¬∃e ∀a,b. typeCheck(empty, e, goal(a,b))`` becomes the query clause
``∀e. (∀a,b. typeCheck(empty, e, goal(a,b))) → ⊥`` (a universal block in
the body, see :class:`repro.chc.clauses.BodyAtom`).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.chc.clauses import BodyAtom, CHCSystem, Clause
from repro.logic.formulas import Eq, Not, Or, TRUE, conj, disj
from repro.logic.sorts import PredSymbol
from repro.logic.terms import Term, Var

from repro.stlc.adts import (
    ENV,
    EXPR,
    TYPE,
    VAR,
    abs_,
    app_,
    arrow,
    cons_env,
    empty,
    evar,
    stlc_adts,
)

TYPECHECK = PredSymbol("typeCheck", (ENV, EXPR, TYPE))

GoalBuilder = Callable[[Term, Term], Term]


def goal_not_classical(a: Term, b: Term) -> Term:
    """The paper's main goal: ``(a -> b) -> a`` (not a classical tautology,
    hence uninhabited and provable by the regular invariant)."""
    return arrow(arrow(a, b), a)


def goal_peirce(a: Term, b: Term) -> Term:
    """Peirce's law ``((a -> b) -> a) -> a``: a classical but not
    intuitionistic tautology — uninhabited, yet the paper's tool diverges
    (Sec. 5's closing discussion)."""
    return arrow(arrow(arrow(a, b), a), a)


def goal_identity(a: Term, b: Term) -> Term:
    """``a -> a``: inhabited by ``λx.x`` — the assertion is violated."""
    return arrow(a, a)


def typecheck_vc(
    goal: GoalBuilder = goal_not_classical, *, name: str = "STLC"
) -> CHCSystem:
    """The verification conditions of Fig. 2, parameterized by the goal."""
    system = CHCSystem(stlc_adts(), name=name)
    g = Var("G", ENV)
    g1 = Var("G1", ENV)
    e = Var("e", EXPR)
    e1 = Var("e1", EXPR)
    e2 = Var("e2", EXPR)
    t = Var("t", TYPE)
    t1 = Var("t1", TYPE)
    u = Var("u", TYPE)
    v = Var("v", VAR)
    v1 = Var("v1", VAR)

    # clause 1: matching head binding types the variable
    system.add(
        Clause(
            conj(Eq(g, cons_env(v, t, g1)), Eq(e, evar(v))),
            (),
            BodyAtom(TYPECHECK, (g, e, t)),
            "tc-var-hit",
        )
    )
    # clause 2: skip a non-matching binding
    system.add(
        Clause(
            conj(
                Eq(g, cons_env(v1, t1, g1)),
                Eq(e, evar(v)),
                disj(Not(Eq(v, v1)), Not(Eq(t, t1))),
            ),
            (BodyAtom(TYPECHECK, (g1, e, t)),),
            BodyAtom(TYPECHECK, (g, e, t)),
            "tc-var-skip",
        )
    )
    # clause 3: abstraction
    system.add(
        Clause(
            conj(Eq(e, abs_(v, e1)), Eq(t, arrow(t1, u))),
            (BodyAtom(TYPECHECK, (cons_env(v, t1, g), e1, u)),),
            BodyAtom(TYPECHECK, (g, e, t)),
            "tc-abs",
        )
    )
    # clause 4: application
    system.add(
        Clause(
            Eq(e, app_(e1, e2)),
            (
                BodyAtom(TYPECHECK, (g, e2, u)),
                BodyAtom(TYPECHECK, (g, e1, arrow(u, t))),
            ),
            BodyAtom(TYPECHECK, (g, e, t)),
            "tc-app",
        )
    )
    # query: no closed term has the goal type at *every* instantiation
    a = Var("a", TYPE)
    b = Var("b", TYPE)
    system.add(
        Clause(
            TRUE,
            (
                BodyAtom(
                    TYPECHECK,
                    (empty(), e, goal(a, b)),
                    universal_vars=(a, b),
                ),
            ),
            None,
            "tc-query",
        )
    )
    return system
