"""Command-line interface: run solvers on SMT-LIB CHC files.

Usage (mirrors how the original RInGen binary was driven):

    python -m repro.cli problem.smt2                  # RInGen
    python -m repro.cli solve problem.smt2            # same (explicit verb)
    python -m repro.cli --solver elem problem.smt2    # the Elem baseline
    python -m repro.cli --timeout 60 --model problem.smt2

Prints ``sat`` / ``unsat`` / ``unknown`` on the first line; with
``--model`` the regular invariant (finite-model and automata views)
follows, and with ``--cex`` the refutation derivation is printed for
UNSAT answers.  Unknown answers distinguish a completed sweep ("no
finite model of total size <= N") from budget exhaustion on the reason
line.  ``--no-cores`` / ``--no-lbd`` switch off the unsat-core-guided
sweep and the LBD-tier learned-clause retention (ablation baselines).
``--backend pysat`` swaps the SAT engine under the model finder for
the optional `python-sat` Glucose adapter (see
:mod:`repro.sat.backend`); when the dependency is missing the command
fails up front with an actionable message and exit code 2.

Campaign batch mode solves many files through one shared
:class:`~repro.mace.pool.EnginePool`, so signature-compatible problems
reuse a single persistent incremental engine (clauses, learned clauses,
heuristic state) instead of rebuilding it per file:

    python -m repro.cli campaign a.smt2 b.smt2 c.smt2
    python -m repro.cli campaign --timeout 10 --no-share *.smt2  # ablation

One ``<file>: <status> (<seconds>s)`` line is printed per problem,
followed by a summary of the pool's cross-problem reuse counters
(engines created, warm-engine hits, clauses inherited).  The exit code
is the number of files that did not produce a sat/unsat answer.

Fault-tolerant campaigns (the :mod:`repro.exec` supervisor) run each
problem in a watchdogged worker subprocess and journal every verdict,
so hangs, crashes and OOMs become per-problem ``error:*`` verdicts
instead of lost runs, and an interrupted campaign resumes where it
stopped:

    python -m repro.cli campaign --isolate --journal run.jsonl *.smt2
    python -m repro.cli campaign --resume run.jsonl *.smt2   # finish it
    python -m repro.cli campaign --isolate --mem-limit 2048 \\
        --max-retries 3 *.smt2

Warm cache (``--warm-cache DIR``, solve and campaign): persists each
engine's serialized state (clauses, learned clauses, heuristic scores,
per-signature refutation cores) to ``DIR`` when the run completes, and
warm-starts later runs over the same ADT signatures from it.  Verdicts
are unaffected — the cache only changes the solver state a run starts
from; corrupted, stale or incompatible cache entries are rejected and
the run falls back to a cold start:

    python -m repro.cli campaign --warm-cache .engines *.smt2  # cold
    python -m repro.cli campaign --warm-cache .engines *.smt2  # warm

A resumed journal may point at a different (or no) warm cache: the
journal's configuration fingerprint deliberately excludes it.

Observability (``solve`` and ``campaign``): ``--trace FILE`` records a
hierarchical span trace (JSONL; convert with ``python -m
repro.obs.tracer FILE out.json`` and open in chrome://tracing),
``--metrics FILE`` writes one merged metrics snapshot (counters, gauges
and timing histograms from every layer), ``--progress`` renders live
heartbeat lines (task, conflicts/sec, vectors, RSS) while solving, and
``--profile DIR`` dumps a cProfile pstats file per task.  All four are
off by default and the instrumented code paths are no-ops without
them — see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from typing import Optional, Sequence

from repro.chc.parser import ParseError, parse_chc
from repro.core.ringen import RInGen, RInGenConfig
from repro.mace.pool import EnginePool
from repro.sat.backend import (
    BACKEND_NAMES,
    BackendUnavailableError,
    make_backend,
)
from repro.solvers.elem import ElemConfig, ElemSolver
from repro.solvers.induct import InductConfig, InductSolver
from repro.solvers.sizeelem import SizeElemConfig, SizeElemSolver
from repro.solvers.verimap import VeriMapConfig, VeriMapSolver

SOLVERS = {
    "ringen": lambda t, **kw: RInGen(RInGenConfig(timeout=t, **kw)),
    "elem": lambda t, **kw: ElemSolver(ElemConfig(timeout=t)),
    "sizeelem": lambda t, **kw: SizeElemSolver(SizeElemConfig(timeout=t)),
    "cvc4-ind": lambda t, **kw: InductSolver(InductConfig(timeout=t)),
    "verimap-iddt": lambda t, **kw: VeriMapSolver(
        VeriMapConfig(timeout=t)
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regular invariant inference for CHCs over ADTs "
        "(PLDI 2021 reproduction)",
        epilog="Batch mode: 'repro campaign a.smt2 b.smt2 ...' solves "
        "many files over one shared model-finding engine per ADT "
        "signature.  Fault-tolerant runs: 'repro campaign --isolate "
        "--journal run.jsonl *.smt2' supervises each problem in a "
        "watchdogged worker and journals every verdict; 'repro campaign "
        "--resume run.jsonl *.smt2' finishes an interrupted run without "
        "re-solving journaled problems ('repro campaign --help' for "
        "all options).",
    )
    parser.add_argument("file", help="SMT-LIB2 CHC problem ('-' for stdin)")
    parser.add_argument(
        "--solver",
        choices=sorted(SOLVERS),
        default="ringen",
        help="which engine to run (default: ringen)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="seconds (default 60)"
    )
    parser.add_argument(
        "--model",
        action="store_true",
        help="print the invariant on SAT answers",
    )
    parser.add_argument(
        "--cex",
        action="store_true",
        help="print the refutation derivation on UNSAT answers",
    )
    parser.add_argument(
        "--no-cores",
        action="store_true",
        help="disable the unsat-core-guided size sweep (ringen only)",
    )
    parser.add_argument(
        "--no-lbd",
        action="store_true",
        help="legacy length-based learned-clause GC instead of LBD "
        "tiers (ringen only)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="python",
        help="SAT engine under the model finder: the in-repo "
        "pure-Python CDCL solver or the optional python-sat/Glucose "
        "adapter (ringen only; default: python)",
    )
    parser.add_argument(
        "--sweep-shards",
        type=int,
        default=1,
        metavar="N",
        help="speculatively solve N candidate size vectors in parallel "
        "engine shards; the verdict is identical to the sequential "
        "sweep (ringen only; default: 1)",
    )
    parser.add_argument(
        "--warm-cache",
        metavar="DIR",
        help="disk cache of serialized engines: warm-start from DIR if "
        "a compatible engine is cached there, and persist this run's "
        "engine back on completion (ringen only)",
    )
    _add_obs_arguments(parser)
    return parser


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        metavar="FILE",
        help="record a span trace to FILE (JSONL; convert for "
        "chrome://tracing with 'python -m repro.obs.tracer FILE out.json')",
    )
    group.add_argument(
        "--metrics",
        metavar="FILE",
        help="write the merged metrics snapshot (counters, gauges, "
        "timing histograms) to FILE as JSON",
    )
    group.add_argument(
        "--progress",
        action="store_true",
        help="render live progress lines while solving (task id, "
        "conflicts/sec, size vectors, RSS)",
    )
    group.add_argument(
        "--profile",
        metavar="DIR",
        help="dump one cProfile pstats file per task into DIR "
        "(inspect with 'python -m pstats')",
    )


def build_campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro campaign",
        description="Solve a batch of CHC files with one shared "
        "model-finding engine per ADT signature (campaign batch mode)",
    )
    parser.add_argument(
        "files", nargs="+", help="SMT-LIB2 CHC problem files"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-problem seconds (default 60)",
    )
    parser.add_argument(
        "--no-share",
        action="store_true",
        help="fresh engine per problem (ablation baseline)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the pool summary (verdict lines only)",
    )
    parser.add_argument(
        "--no-cores",
        action="store_true",
        help="disable the unsat-core-guided size sweep",
    )
    parser.add_argument(
        "--no-lbd",
        action="store_true",
        help="legacy length-based learned-clause GC instead of LBD tiers",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="python",
        help="SAT engine under every model finder in the campaign "
        "(default: python)",
    )
    parser.add_argument(
        "--sweep-shards",
        type=int,
        default=1,
        metavar="N",
        help="speculatively solve N candidate size vectors in parallel "
        "engine shards per problem; verdicts are identical to the "
        "sequential sweep (default: 1)",
    )
    parser.add_argument(
        "--isolate",
        action="store_true",
        help="run each problem in a supervised worker subprocess with a "
        "hard wall-clock watchdog (hangs/crashes/OOMs become per-problem "
        "error verdicts instead of killing the campaign)",
    )
    parser.add_argument(
        "--journal",
        metavar="PATH",
        help="append every finished verdict to a JSONL journal "
        "(flushed per verdict; survives kills)",
    )
    parser.add_argument(
        "--resume",
        metavar="PATH",
        help="resume from a journal: already-journaled problems are "
        "replayed, only the remainder is re-executed (implies --journal "
        "on the same file)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retries (with exponential backoff) for transient worker "
        "deaths (default 2; deterministic crashes are never retried)",
    )
    parser.add_argument(
        "--mem-limit",
        type=int,
        default=None,
        metavar="MB",
        help="per-worker address-space cap in MiB; allocation beyond it "
        "becomes a structured error:oom verdict (isolated mode)",
    )
    parser.add_argument(
        "--warm-cache",
        metavar="DIR",
        help="disk cache of serialized engines: warm-start each "
        "signature's engine from DIR when compatible state is cached "
        "there, and persist the campaign's engines back on completion",
    )
    _add_obs_arguments(parser)
    return parser


def _configure_obs(args) -> None:
    """Turn the process-global collectors on per the CLI flags."""
    from repro.obs import runtime as obs_runtime

    obs_runtime.configure(
        trace_path=args.trace, metrics=bool(args.metrics)
    )


def _finalize_obs(args) -> None:
    """Write the metrics artifact and shut the collectors down."""
    from repro.obs import runtime as obs_runtime

    if args.metrics and obs_runtime.METRICS is not None:
        obs_runtime.METRICS.write(args.metrics)
    obs_runtime.reset()


@contextlib.contextmanager
def _live_progress(args):
    """Heartbeat progress lines on stderr for the in-process paths
    (no-op without ``--progress``); supervised campaigns get theirs
    from the worker pipes instead."""
    from repro.obs.events import (
        EventBus,
        HeartbeatRenderer,
        ProgressMonitor,
    )

    if not args.progress:
        yield
        return
    bus = EventBus()
    bus.subscribe(
        HeartbeatRenderer(
            lambda line: print(line, file=sys.stderr), min_interval=1.0
        )
    )
    monitor = ProgressMonitor(bus, interval=0.5)
    monitor.start()
    try:
        yield
    finally:
        monitor.stop()


def _backend_error(name: str) -> Optional[str]:
    """Probe-construct the chosen SAT backend; the error text if it
    cannot start (missing optional dependency), else ``None``."""
    try:
        probe = make_backend(name)
    except BackendUnavailableError as error:
        return str(error)
    delete = getattr(probe, "delete", None)
    if delete is not None:
        delete()
    return None


def campaign_main(argv: Sequence[str]) -> int:
    """The ``campaign`` entry point: batch solving over a shared pool."""
    args = build_campaign_parser().parse_args(argv)
    backend_problem = _backend_error(args.backend)
    if backend_problem is not None:
        print(f"error: {backend_problem}", file=sys.stderr)
        return 2
    if args.resume and args.journal and args.resume != args.journal:
        print(
            "error: --resume and --journal must name the same file",
            file=sys.stderr,
        )
        return 2
    _configure_obs(args)
    try:
        if (
            args.isolate
            or args.journal
            or args.resume
            or args.max_retries is not None
            or args.mem_limit is not None
        ):
            return _campaign_supervised(args)
        return _campaign_plain(args)
    finally:
        _finalize_obs(args)


def _campaign_plain(args) -> int:
    """The in-process campaign loop (no supervisor)."""
    from repro.obs import runtime as obs_runtime
    from repro.obs.profiler import maybe_profile, profile_path

    pool = (
        None
        if args.no_share
        else EnginePool(
            lbd_retention=not args.no_lbd,
            sat_backend=args.backend,
            cache_dir=args.warm_cache,
        )
    )
    failures = 0
    tracer = obs_runtime.TRACER
    campaign_cm = (
        tracer.span("campaign", {"files": len(args.files)})
        if tracer is not None
        else contextlib.nullcontext()
    )
    with campaign_cm, _live_progress(args):
        for path in args.files:
            try:
                with open(path) as handle:
                    text = handle.read()
                system = parse_chc(text, name=path)
            except (OSError, ParseError) as error:
                print(f"{path}: error: {error}", file=sys.stderr)
                failures += 1
                continue
            solver = RInGen(
                RInGenConfig(
                    timeout=args.timeout,
                    engine_pool=pool,
                    core_guided_sweep=not args.no_cores,
                    lbd_retention=not args.no_lbd,
                    sat_backend=args.backend,
                    sweep_shards=args.sweep_shards,
                )
            )
            obs_runtime.task_started(path)
            task_cm = (
                tracer.span("task", {"task": path})
                if tracer is not None
                else contextlib.nullcontext()
            )
            prof = (
                profile_path(args.profile, path) if args.profile else None
            )
            start = time.monotonic()
            try:
                with task_cm, maybe_profile(prof):
                    result = solver.solve(system)
            finally:
                obs_runtime.task_finished()
            elapsed = time.monotonic() - start
            print(f"{path}: {result.status.value} ({elapsed:.2f}s)")
            if result.is_unknown:
                failures += 1
    if pool is not None:
        pool.flush_cache()
        pool.publish_metrics()
        if not args.quiet:
            stats = pool.as_dict()
            print(
                f"; pool: {stats['problems']} problems, "
                f"{stats['engines_created']} engines, "
                f"{stats['engine_hits']} warm-engine hits, "
                f"{stats['cross_problem_clauses']} clauses inherited"
                + _snapshot_note(stats)
            )
    return failures


def _snapshot_note(stats: dict) -> str:
    """Warm-cache suffix for the pool summary line (empty when the
    run never touched snapshots)."""
    touched = (
        stats.get("snapshot_saves", 0)
        + stats.get("snapshot_hits", 0)
        + stats.get("snapshot_misses", 0)
        + stats.get("snapshot_rejected", 0)
    )
    if not touched:
        return ""
    return (
        f"; snapshots: {stats.get('snapshot_saves', 0)} saved, "
        f"{stats.get('snapshot_hits', 0)} warm starts, "
        f"{stats.get('snapshot_rejected', 0)} rejected"
    )


def _campaign_supervised(args) -> int:
    """Supervised campaign over files: workers, journal, resume."""
    from repro.chc.transform import preprocess
    from repro.exec.journal import JournalError
    from repro.exec.supervisor import ExecPolicy, TaskSpec, execute_tasks
    from repro.mace.pool import signature_fingerprint

    solver_opts = {
        "core_guided_sweep": not args.no_cores,
        "lbd_retention": not args.no_lbd,
        "sat_backend": args.backend,
        "sweep_shards": args.sweep_shards,
    }
    if args.warm_cache:
        solver_opts["engine_cache_dir"] = args.warm_cache
    policy = ExecPolicy(
        isolate=args.isolate,
        share_engines=not args.no_share,
        mem_limit_mb=args.mem_limit,
        solver_opts=solver_opts,
        profile_dir=args.profile,
    )
    if args.max_retries is not None:
        policy.max_retries = args.max_retries
    if args.progress:
        # workers stream heartbeats over the verdict pipe; the
        # supervisor renders at most one line per second
        policy.heartbeat_interval = 1.0
    failures = 0
    tasks: list[TaskSpec] = []
    for index, path in enumerate(args.files):
        try:
            with open(path) as handle:
                text = handle.read()
            system = parse_chc(text, name=path)
        except (OSError, ParseError) as error:
            print(f"{path}: error: {error}", file=sys.stderr)
            failures += 1
            continue
        group_key = None
        if policy.share_engines and policy.isolate:
            try:
                group_key = signature_fingerprint(preprocess(system))
            except Exception as error:
                print(
                    f"{path}: warning: unfingerprintable ({error}); "
                    f"running unshared",
                    file=sys.stderr,
                )
        tasks.append(
            TaskSpec(
                task_id=path,
                solver="ringen",
                timeout=args.timeout,
                smt_text=text,
                index=index,
                group_key=group_key,
            )
        )
    journal = args.resume or args.journal
    pool = None
    if policy.share_engines and not policy.isolate:
        pool = EnginePool(
            lbd_retention=not args.no_lbd,
            sat_backend=args.backend,
            cache_dir=args.warm_cache,
        )
    from repro.obs import runtime as obs_runtime

    tracer = obs_runtime.TRACER
    campaign_cm = (
        tracer.span(
            "campaign", {"files": len(tasks), "isolate": policy.isolate}
        )
        if tracer is not None
        else contextlib.nullcontext()
    )
    try:
        with campaign_cm:
            records, stats = execute_tasks(
                tasks,
                policy,
                journal_path=journal,
                resume=bool(args.resume),
                progress=print,
                engine_pool=pool,
            )
    except JournalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    metrics = obs_runtime.METRICS
    if metrics is not None:
        for record in records.values():
            metrics.timing(
                "task.elapsed", float(record.get("elapsed") or 0.0)
            )
            metrics.inc(f"task.status.{record.get('status', 'unknown')}")
        metrics.publish(
            "exec",
            {
                k: v
                for k, v in stats.as_dict().items()
                if k not in ("pool_stats", "last_heartbeat")
            },
        )
    if pool is not None:
        pool.flush_cache()
        pool.publish_metrics()
    for task in tasks:
        record = records.get(task.task_id)
        if record is None:
            failures += 1  # interrupted before this task ran
        elif record["status"] not in ("sat", "unsat"):
            failures += 1
    if not args.quiet:
        pool_stats = pool.as_dict() if pool is not None else stats.pool_stats
        if pool_stats:
            print(
                f"; pool: {pool_stats.get('problems', 0)} problems, "
                f"{pool_stats.get('engines_created', 0)} engines, "
                f"{pool_stats.get('engine_hits', 0)} warm-engine hits, "
                f"{pool_stats.get('cross_problem_clauses', 0)} "
                f"clauses inherited"
                + _snapshot_note(pool_stats)
            )
        errors = stats.error_counts
        error_note = (
            ", ".join(f"{k}={v}" for k, v in sorted(errors.items()))
            if errors
            else "none"
        )
        print(
            f"; exec: {stats.tasks_executed} executed, "
            f"{stats.tasks_resumed} resumed, {stats.retries} retries, "
            f"{stats.workers_spawned} workers, errors: {error_note}"
            + (" [INTERRUPTED]" if stats.interrupted else "")
        )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        return campaign_main(list(argv[1:]))
    if argv and argv[0] == "solve":
        # explicit verb form: 'repro solve problem.smt2' — same parser
        argv = list(argv[1:])
    args = build_parser().parse_args(argv)
    backend_problem = _backend_error(args.backend)
    if backend_problem is not None:
        print(f"error: {backend_problem}", file=sys.stderr)
        return 2
    if args.file == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.file) as handle:
                text = handle.read()
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    try:
        system = parse_chc(text, name=args.file)
    except ParseError as error:
        print(f"parse error: {error}", file=sys.stderr)
        return 2

    solver = SOLVERS[args.solver](
        args.timeout,
        core_guided_sweep=not args.no_cores,
        lbd_retention=not args.no_lbd,
        sat_backend=args.backend,
        engine_cache_dir=args.warm_cache,
        sweep_shards=args.sweep_shards,
    )
    from repro.obs import runtime as obs_runtime
    from repro.obs.profiler import maybe_profile, profile_path

    _configure_obs(args)
    try:
        obs_runtime.task_started(args.file)
        prof = (
            profile_path(args.profile, args.file) if args.profile else None
        )
        with _live_progress(args), maybe_profile(prof):
            result = solver.solve(system)
    finally:
        obs_runtime.task_finished()
        _finalize_obs(args)
    print(result.status.value)
    if result.is_unknown and result.reason:
        print(f"; {result.reason}")
    if args.model and result.is_sat and result.invariant is not None:
        print(result.invariant.describe())
    if args.cex and result.is_unsat and result.refutation is not None:
        print(result.refutation.format())
    return 0 if not result.is_unknown else 1


if __name__ == "__main__":
    sys.exit(main())
