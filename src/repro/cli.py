"""Command-line interface: run solvers on SMT-LIB CHC files.

Usage (mirrors how the original RInGen binary was driven):

    python -m repro.cli problem.smt2                  # RInGen
    python -m repro.cli --solver elem problem.smt2    # the Elem baseline
    python -m repro.cli --timeout 60 --model problem.smt2

Prints ``sat`` / ``unsat`` / ``unknown`` on the first line; with
``--model`` the regular invariant (finite-model and automata views)
follows, and with ``--cex`` the refutation derivation is printed for
UNSAT answers.  Unknown answers distinguish a completed sweep ("no
finite model of total size <= N") from budget exhaustion on the reason
line.  ``--no-cores`` / ``--no-lbd`` switch off the unsat-core-guided
sweep and the LBD-tier learned-clause retention (ablation baselines).

Campaign batch mode solves many files through one shared
:class:`~repro.mace.pool.EnginePool`, so signature-compatible problems
reuse a single persistent incremental engine (clauses, learned clauses,
heuristic state) instead of rebuilding it per file:

    python -m repro.cli campaign a.smt2 b.smt2 c.smt2
    python -m repro.cli campaign --timeout 10 --no-share *.smt2  # ablation

One ``<file>: <status> (<seconds>s)`` line is printed per problem,
followed by a summary of the pool's cross-problem reuse counters
(engines created, warm-engine hits, clauses inherited).  The exit code
is the number of files that did not produce a sat/unsat answer.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.chc.parser import ParseError, parse_chc
from repro.core.ringen import RInGen, RInGenConfig
from repro.mace.pool import EnginePool
from repro.solvers.elem import ElemConfig, ElemSolver
from repro.solvers.induct import InductConfig, InductSolver
from repro.solvers.sizeelem import SizeElemConfig, SizeElemSolver
from repro.solvers.verimap import VeriMapConfig, VeriMapSolver

SOLVERS = {
    "ringen": lambda t, **kw: RInGen(RInGenConfig(timeout=t, **kw)),
    "elem": lambda t, **kw: ElemSolver(ElemConfig(timeout=t)),
    "sizeelem": lambda t, **kw: SizeElemSolver(SizeElemConfig(timeout=t)),
    "cvc4-ind": lambda t, **kw: InductSolver(InductConfig(timeout=t)),
    "verimap-iddt": lambda t, **kw: VeriMapSolver(
        VeriMapConfig(timeout=t)
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regular invariant inference for CHCs over ADTs "
        "(PLDI 2021 reproduction)",
        epilog="Batch mode: 'repro campaign a.smt2 b.smt2 ...' solves "
        "many files over one shared model-finding engine per ADT "
        "signature ('repro campaign --help' for its options).",
    )
    parser.add_argument("file", help="SMT-LIB2 CHC problem ('-' for stdin)")
    parser.add_argument(
        "--solver",
        choices=sorted(SOLVERS),
        default="ringen",
        help="which engine to run (default: ringen)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="seconds (default 60)"
    )
    parser.add_argument(
        "--model",
        action="store_true",
        help="print the invariant on SAT answers",
    )
    parser.add_argument(
        "--cex",
        action="store_true",
        help="print the refutation derivation on UNSAT answers",
    )
    parser.add_argument(
        "--no-cores",
        action="store_true",
        help="disable the unsat-core-guided size sweep (ringen only)",
    )
    parser.add_argument(
        "--no-lbd",
        action="store_true",
        help="legacy length-based learned-clause GC instead of LBD "
        "tiers (ringen only)",
    )
    return parser


def build_campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro campaign",
        description="Solve a batch of CHC files with one shared "
        "model-finding engine per ADT signature (campaign batch mode)",
    )
    parser.add_argument(
        "files", nargs="+", help="SMT-LIB2 CHC problem files"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-problem seconds (default 60)",
    )
    parser.add_argument(
        "--no-share",
        action="store_true",
        help="fresh engine per problem (ablation baseline)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the pool summary (verdict lines only)",
    )
    parser.add_argument(
        "--no-cores",
        action="store_true",
        help="disable the unsat-core-guided size sweep",
    )
    parser.add_argument(
        "--no-lbd",
        action="store_true",
        help="legacy length-based learned-clause GC instead of LBD tiers",
    )
    return parser


def campaign_main(argv: Sequence[str]) -> int:
    """The ``campaign`` entry point: batch solving over a shared pool."""
    args = build_campaign_parser().parse_args(argv)
    pool = (
        None
        if args.no_share
        else EnginePool(lbd_retention=not args.no_lbd)
    )
    failures = 0
    for path in args.files:
        try:
            with open(path) as handle:
                text = handle.read()
            system = parse_chc(text, name=path)
        except (OSError, ParseError) as error:
            print(f"{path}: error: {error}", file=sys.stderr)
            failures += 1
            continue
        solver = RInGen(
            RInGenConfig(
                timeout=args.timeout,
                engine_pool=pool,
                core_guided_sweep=not args.no_cores,
                lbd_retention=not args.no_lbd,
            )
        )
        start = time.monotonic()
        result = solver.solve(system)
        elapsed = time.monotonic() - start
        print(f"{path}: {result.status.value} ({elapsed:.2f}s)")
        if result.is_unknown:
            failures += 1
    if pool is not None and not args.quiet:
        stats = pool.as_dict()
        print(
            f"; pool: {stats['problems']} problems, "
            f"{stats['engines_created']} engines, "
            f"{stats['engine_hits']} warm-engine hits, "
            f"{stats['cross_problem_clauses']} clauses inherited"
        )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        return campaign_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    if args.file == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.file) as handle:
                text = handle.read()
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    try:
        system = parse_chc(text, name=args.file)
    except ParseError as error:
        print(f"parse error: {error}", file=sys.stderr)
        return 2

    solver = SOLVERS[args.solver](
        args.timeout,
        core_guided_sweep=not args.no_cores,
        lbd_retention=not args.no_lbd,
    )
    result = solver.solve(system)
    print(result.status.value)
    if result.is_unknown and result.reason:
        print(f"; {result.reason}")
    if args.model and result.is_sat and result.invariant is not None:
        print(result.invariant.describe())
    if args.cex and result.is_unsat and result.refutation is not None:
        print(result.refutation.format())
    return 0 if not result.is_unknown else 1


if __name__ == "__main__":
    sys.exit(main())
