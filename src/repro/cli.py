"""Command-line interface: run solvers on SMT-LIB CHC files.

Usage (mirrors how the original RInGen binary was driven):

    python -m repro.cli problem.smt2                  # RInGen
    python -m repro.cli --solver elem problem.smt2    # the Elem baseline
    python -m repro.cli --timeout 60 --model problem.smt2

Prints ``sat`` / ``unsat`` / ``unknown`` on the first line; with
``--model`` the regular invariant (finite-model and automata views)
follows, and with ``--cex`` the refutation derivation is printed for
UNSAT answers.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.chc.parser import ParseError, parse_chc
from repro.core.ringen import RInGen, RInGenConfig
from repro.solvers.elem import ElemConfig, ElemSolver
from repro.solvers.induct import InductConfig, InductSolver
from repro.solvers.sizeelem import SizeElemConfig, SizeElemSolver
from repro.solvers.verimap import VeriMapConfig, VeriMapSolver

SOLVERS = {
    "ringen": lambda t: RInGen(RInGenConfig(timeout=t)),
    "elem": lambda t: ElemSolver(ElemConfig(timeout=t)),
    "sizeelem": lambda t: SizeElemSolver(SizeElemConfig(timeout=t)),
    "cvc4-ind": lambda t: InductSolver(InductConfig(timeout=t)),
    "verimap-iddt": lambda t: VeriMapSolver(VeriMapConfig(timeout=t)),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regular invariant inference for CHCs over ADTs "
        "(PLDI 2021 reproduction)",
    )
    parser.add_argument("file", help="SMT-LIB2 CHC problem ('-' for stdin)")
    parser.add_argument(
        "--solver",
        choices=sorted(SOLVERS),
        default="ringen",
        help="which engine to run (default: ringen)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="seconds (default 60)"
    )
    parser.add_argument(
        "--model",
        action="store_true",
        help="print the invariant on SAT answers",
    )
    parser.add_argument(
        "--cex",
        action="store_true",
        help="print the refutation derivation on UNSAT answers",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.file == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.file) as handle:
                text = handle.read()
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    try:
        system = parse_chc(text, name=args.file)
    except ParseError as error:
        print(f"parse error: {error}", file=sys.stderr)
        return 2

    solver = SOLVERS[args.solver](args.timeout)
    result = solver.solve(system)
    print(result.status.value)
    if result.is_unknown and result.reason:
        print(f"; {result.reason}")
    if args.model and result.is_sat and result.invariant is not None:
        print(result.invariant.describe())
    if args.cex and result.is_unsat and result.refutation is not None:
        print(result.refutation.format())
    return 0 if not result.is_unknown else 1


if __name__ == "__main__":
    sys.exit(main())
