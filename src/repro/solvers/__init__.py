"""Baseline solvers: one per invariant representation class of Table 1.

* :class:`ElemSolver` — elementary invariants (Z3/Spacer's class),
* :class:`SizeElemSolver` — elementary + size constraints (Eldarica's),
* :class:`InductSolver` — inductive refutation only (CVC4-Ind),
* :class:`VeriMapSolver` — ADT-eliminating transformation (VeriMAP-iddt),

plus the registry used by the experiment harness.  RInGen itself lives in
:mod:`repro.core`.
"""

from repro.core.ringen import RInGen
from repro.solvers.elem import (
    ElemConfig,
    ElemFormula,
    ElemInvariant,
    ElemSolver,
    solve_elem,
)
from repro.solvers.induct import InductConfig, InductSolver, solve_induct
from repro.solvers.sizeelem import (
    SizeElemConfig,
    SizeElemInvariant,
    SizeElemSolver,
    SizeTemplate,
    solve_sizeelem,
)
from repro.solvers.verimap import VeriMapConfig, VeriMapSolver, solve_verimap

SOLVER_CLASSES = {
    "ringen": RInGen,
    "elem": ElemSolver,
    "sizeelem": SizeElemSolver,
    "cvc4-ind": InductSolver,
    "verimap-iddt": VeriMapSolver,
}

# Table 1's header: which invariant representation each solver stands for.
REPRESENTATION = {
    "ringen": "Reg",
    "sizeelem": "SizeElem",
    "elem": "Elem",
    "cvc4-ind": "-",
    "verimap-iddt": "-",
}

__all__ = [
    "ElemConfig",
    "ElemFormula",
    "ElemInvariant",
    "ElemSolver",
    "InductConfig",
    "InductSolver",
    "REPRESENTATION",
    "SOLVER_CLASSES",
    "SizeElemConfig",
    "SizeElemInvariant",
    "SizeElemSolver",
    "SizeTemplate",
    "VeriMapConfig",
    "VeriMapSolver",
    "solve_elem",
    "solve_induct",
    "solve_sizeelem",
    "solve_verimap",
]
