"""VeriMAP-iddt baseline proxy: ADT elimination by transformation.

De Angelis et al. eliminate ADTs from the verification conditions
completely (fold/unfold transformation to CHCs over LIA + booleans); the
transformed system is then checked by a standard LIA engine, and *no ADT
invariant is produced* — the paper includes it as a baseline despite this
(Sec. 8, "Competing tools").

Our proxy performs the analogous pipeline with the size abstraction as the
ADT-eliminating transformation (every term is replaced by its constructor
count, the strongest ADT-free abstraction our clause language supports)
followed by the size-template fixpoint engine of
:mod:`repro.solvers.sizeelem`.  A SAT answer means the *transformed*
system is safe; like the original tool, it certifies safety without an
ADT-level invariant.  UNSAT answers come from bounded derivation search.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.chc.clauses import CHCSystem
from repro.chc.transform import normalize, remove_selectors
from repro.core.cex import search_counterexample
from repro.core.result import SolveResult, sat, unknown, unsat
from repro.solvers.sizeelem import SizeElemConfig, SizeElemSolver


@dataclass
class VeriMapConfig:
    cex_height: int = 4
    timeout: Optional[float] = None


class VeriMapSolver:
    """Transformation-based baseline (size abstraction + LIA templates)."""

    name = "verimap-iddt"

    def __init__(self, config: Optional[VeriMapConfig] = None):
        self.config = config or VeriMapConfig()

    def solve(self, system: CHCSystem) -> SolveResult:
        start = time.monotonic()
        cfg = self.config
        cex_budget = None
        if cfg.timeout is not None:
            cex_budget = max(cfg.timeout * 0.3, 0.05)
        cex = search_counterexample(
            normalize(remove_selectors(system)),
            max_height=cfg.cex_height,
            timeout=cex_budget,
        )
        if cex.found:
            result = unsat(self.name, cex.refutation)
            result.elapsed = time.monotonic() - start
            return result
        remaining = None
        if cfg.timeout is not None:
            remaining = max(
                cfg.timeout - (time.monotonic() - start), 0.05
            )
        inner = SizeElemSolver(SizeElemConfig(timeout=remaining))
        invariant = inner._size_phase(
            system,
            None if remaining is None else time.monotonic() + remaining,
        )
        if invariant is None:
            result = unknown(
                self.name, "transformed (ADT-free) system not proved safe"
            )
        else:
            # the certificate lives at the transformed level; no ADT
            # invariant is returned, matching the original tool
            result = sat(self.name, None, transformed_certificate=str(
                invariant.describe()
            ))
        result.elapsed = time.monotonic() - start
        return result


def solve_verimap(
    system: CHCSystem, *, timeout: Optional[float] = None, **overrides
) -> SolveResult:
    config = VeriMapConfig(timeout=timeout)
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise TypeError(f"unknown VeriMAP option {key!r}")
        setattr(config, key, value)
    return VeriMapSolver(config).solve(system)
