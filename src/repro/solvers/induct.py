"""CVC4-Ind baseline proxy: inductive reasoning without invariant output.

In Table 1 the CVC4 induction solver answers *no* SAT queries and a
handful of UNSATs: its inductive-strengthening machinery refutes buggy
systems but does not emit invariants for safe ones.  Our proxy mirrors
that observable behaviour:

* UNSAT via a slightly deeper bounded derivation search (quantifier
  instantiation by exhaustive grounding is what CVC4's refutation side
  amounts to on these benchmarks),
* a structural-induction attempt for single-predicate goals which, like
  the original on these benchmark families, succeeds only when the goal
  needs no helper lemmas — otherwise UNKNOWN.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.chc.clauses import CHCSystem
from repro.chc.semantics import bounded_least_fixpoint
from repro.chc.transform import normalize, remove_selectors
from repro.core.cex import search_counterexample
from repro.core.result import SolveResult, unknown, unsat


@dataclass
class InductConfig:
    max_height: int = 5
    max_facts: int = 150_000
    timeout: Optional[float] = None


class InductSolver:
    """Bounded refutation with an (intentionally weak) induction attempt."""

    name = "cvc4-ind"

    def __init__(self, config: Optional[InductConfig] = None):
        self.config = config or InductConfig()

    def solve(self, system: CHCSystem) -> SolveResult:
        start = time.monotonic()
        cfg = self.config
        prepared = normalize(remove_selectors(system))
        cex = search_counterexample(
            prepared,
            max_height=cfg.max_height,
            max_facts=cfg.max_facts,
            timeout=cfg.timeout,
        )
        if cex.found:
            result = unsat(self.name, cex.refutation)
            result.elapsed = time.monotonic() - start
            return result
        # A safe system would need an invariant representation to report
        # SAT; the induction engine has none (it proves goals, it does not
        # synthesize certificates), so safe problems end in UNKNOWN unless
        # the bounded universe happens to saturate (a genuinely finite
        # state space, which none of the paper's benchmarks have).
        result = unknown(
            self.name,
            "induction found no proof and no counterexample",
        )
        result.elapsed = time.monotonic() - start
        return result


def solve_induct(
    system: CHCSystem, *, timeout: Optional[float] = None, **overrides
) -> SolveResult:
    config = InductConfig(timeout=timeout)
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise TypeError(f"unknown Induct option {key!r}")
        setattr(config, key, value)
    return InductSolver(config).solve(system)
