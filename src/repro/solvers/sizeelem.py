"""SizeElem baseline: elementary invariants with term-size constraints.

The stand-in for Eldarica in Table 1.  Eldarica's representation class
(Sec. 6.3) extends Elem with Presburger arithmetic over ``size_sigma``
terms; Hojjat & Rümmer solve the resulting constraints by reduction to
EUF + LIA.  We reproduce the same *class* with a two-phase synthesizer:

1. the Elem phase (SizeElem subsumes Elem — Figure 3 draws Elem strictly
   inside SizeElem), with a reduced budget;
2. the size phase: clauses are abstracted to linear-integer clauses by
   mapping every term to its size expression (``size(c(t1..tn)) = 1 +
   sum size(ti)``, disequality constraints dropped — a sound
   over-approximation), and per-predicate size templates are enumerated:
   orderings ``s_i < s_j``, offsets ``s_i = s_j + c``, congruences
   ``s_i ≡ r (mod m)`` (how Eldarica expresses *Even*), congruences of
   sums, constant bounds, and conjunctions of two.

Size-variable pools range over the *realizable* sizes ``S_sigma`` of each
sort (the semilinear size image of Sec. 6.3), computed by the grammar DP in
:meth:`repro.logic.adt.ADTSystem.size_image` — e.g. tree sizes are the odd
numbers, which matters for inductiveness checks.

The solver succeeds on LtGt/Even/IncDec/Diag and must diverge on EvenLeft
(Prop. 2): size constraints count all constructors at once and cannot see
"the leftmost branch".
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.chc.clauses import CHCSystem, Clause
from repro.chc.semantics import bounded_least_fixpoint
from repro.chc.transform import normalize, remove_selectors
from repro.core.cex import search_counterexample
from repro.core.result import SolveResult, sat, unknown, unsat
from repro.logic.adt import ADTSystem
from repro.logic.sorts import PredSymbol, Sort
from repro.logic.terms import App, Term, Var
from repro.logic.terms import size as term_size
from repro.solvers.elem import (
    ElemConfig,
    ElemInvariant,
    ElemSolver,
    ground_instances,
    has_universal_blocks,
    implied_negatives,
)


# ----------------------------------------------------------------------
# Linear size expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinExpr:
    """``const + sum coeff_v * size(v)`` over clause variables."""

    const: int
    coeffs: tuple[tuple[Var, int], ...]

    def eval(self, env: dict[Var, int]) -> int:
        return self.const + sum(c * env[v] for v, c in self.coeffs)

    def variables(self) -> list[Var]:
        return [v for v, _ in self.coeffs]

    def __str__(self) -> str:
        parts = [str(self.const)] if self.const or not self.coeffs else []
        for v, c in self.coeffs:
            parts.append(f"{c}*|{v.name}|" if c != 1 else f"|{v.name}|")
        return " + ".join(parts)


def size_expr(term: Term) -> LinExpr:
    """The size abstraction of a term: every constructor counts one."""
    coeffs: dict[Var, int] = {}
    const = 0

    def walk(t: Term) -> None:
        nonlocal const
        if isinstance(t, Var):
            coeffs[t] = coeffs.get(t, 0) + 1
        else:
            const += 1
            for a in t.args:
                walk(a)

    walk(term)
    return LinExpr(const, tuple(sorted(coeffs.items(), key=lambda kv: kv[0].name)))


# ----------------------------------------------------------------------
# Size templates (the SizeElem candidate language)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SizeAtom:
    """One size constraint over the predicate's argument sizes.

    ``kind`` selects the shape; ``i``/``j`` are argument positions.

    * ``cmp``: ``s_i OP s_j`` with OP in { <, <=, >, >=, == }
    * ``offset``: ``s_i == s_j + c``
    * ``mod``: ``s_i ≡ r (mod m)``
    * ``modsum``: ``s_i + s_j ≡ r (mod m)``
    * ``const``: ``s_i OP c`` with OP in { ==, >=, <= }
    """

    kind: str
    i: int
    j: int = 0
    op: str = ""
    c: int = 0
    m: int = 0
    r: int = 0

    def eval(self, sizes: Sequence[int]) -> bool:
        if self.kind == "cmp":
            a, b = sizes[self.i], sizes[self.j]
            return _compare(a, self.op, b)
        if self.kind == "offset":
            return sizes[self.i] == sizes[self.j] + self.c
        if self.kind == "mod":
            return sizes[self.i] % self.m == self.r
        if self.kind == "modsum":
            return (sizes[self.i] + sizes[self.j]) % self.m == self.r
        if self.kind == "const":
            return _compare(sizes[self.i], self.op, self.c)
        raise ValueError(f"unknown size atom kind {self.kind!r}")

    def __str__(self) -> str:
        if self.kind == "cmp":
            return f"s{self.i} {self.op} s{self.j}"
        if self.kind == "offset":
            return f"s{self.i} = s{self.j} + {self.c}"
        if self.kind == "mod":
            return f"s{self.i} ≡ {self.r} (mod {self.m})"
        if self.kind == "modsum":
            return f"s{self.i} + s{self.j} ≡ {self.r} (mod {self.m})"
        return f"s{self.i} {self.op} {self.c}"

    def complexity(self) -> int:
        base = {"cmp": 2, "offset": 3, "mod": 3, "modsum": 4, "const": 2}
        return base[self.kind] + abs(self.c)


def _compare(a: int, op: str, b: int) -> bool:
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    if op == "==":
        return a == b
    raise ValueError(f"unknown comparison {op!r}")


@dataclass(frozen=True)
class SizeTemplate:
    """A conjunction of size atoms (empty = true)."""

    atoms: tuple[SizeAtom, ...]

    def eval(self, sizes: Sequence[int]) -> bool:
        return all(a.eval(sizes) for a in self.atoms)

    def __str__(self) -> str:
        if not self.atoms:
            return "true"
        return " & ".join(str(a) for a in self.atoms)

    def complexity(self) -> int:
        return 1 + sum(a.complexity() for a in self.atoms)


SIZE_TRUE = SizeTemplate(())


def size_atom_space(arity: int, *, max_offset: int = 3) -> list[SizeAtom]:
    """All template atoms over ``arity`` argument sizes."""
    atoms: list[SizeAtom] = []
    for i in range(arity):
        for m in (2, 3):
            for r in range(m):
                atoms.append(SizeAtom("mod", i, m=m, r=r))
        for op in ("==", ">=", "<="):
            for c in range(1, 5):
                atoms.append(SizeAtom("const", i, op=op, c=c))
    for i in range(arity):
        for j in range(arity):
            if i == j:
                continue
            for op in ("<", "<=", ">", ">=", "=="):
                if i > j and op == "==":
                    continue  # symmetric
                atoms.append(SizeAtom("cmp", i, j, op=op))
            for c in range(1, max_offset + 1):
                atoms.append(SizeAtom("offset", i, j, c=c))
        for j in range(i + 1, arity):
            for m in (2,):
                for r in range(m):
                    atoms.append(SizeAtom("modsum", i, j, m=m, r=r))
    atoms.sort(key=lambda a: a.complexity())
    return atoms


def size_templates(
    arity: int, *, max_conjuncts: int = 2, limit: int = 2500
) -> list[SizeTemplate]:
    """All candidate templates, simplest first."""
    atoms = size_atom_space(arity)
    out: list[SizeTemplate] = [SIZE_TRUE]
    out.extend(SizeTemplate((a,)) for a in atoms)
    if max_conjuncts >= 2:
        for a, b in itertools.combinations(atoms, 2):
            out.append(SizeTemplate((a, b)))
            if len(out) >= limit:
                break
    return out[:limit]


# ----------------------------------------------------------------------
# Invariant objects
# ----------------------------------------------------------------------
@dataclass
class SizeElemInvariant:
    """SAT witness of the size phase: one template per predicate.

    Membership of a ground tuple is decided by its size vector alone
    (plus, optionally, an Elem part when the Elem phase contributed)."""

    templates: dict[PredSymbol, SizeTemplate]
    adts: ADTSystem

    def member(self, pred: PredSymbol, args: tuple[Term, ...]) -> bool:
        sizes = [term_size(t) for t in args]
        return self.templates[pred].eval(sizes)

    def describe(self) -> str:
        return "\n".join(
            f"{p.name}(x0..x{max(p.arity - 1, 0)}) := {t}   "
            f"(s_i = size(x_i))"
            for p, t in sorted(
                self.templates.items(), key=lambda kv: kv[0].name
            )
        )


# ----------------------------------------------------------------------
# Abstract clauses
# ----------------------------------------------------------------------
@dataclass
class AbstractClause:
    """A clause over size expressions."""

    vars: tuple[Var, ...]
    body: tuple[tuple[PredSymbol, tuple[LinExpr, ...]], ...]
    head: Optional[tuple[PredSymbol, tuple[LinExpr, ...]]]
    name: str = ""


def abstract_system(system: CHCSystem) -> Optional[list[AbstractClause]]:
    """Size abstraction of a CHC system (after normalization).

    Disequality constraints are dropped — the abstraction is a sound
    over-approximation: any size invariant of the abstract system maps
    back to a safe inductive invariant of the original one.
    Returns ``None`` if the system has universal blocks.
    """
    normalized = normalize(remove_selectors(system))
    if has_universal_blocks(normalized):
        return None
    out: list[AbstractClause] = []
    for cl in normalized.clauses:
        body = tuple(
            (a.pred, tuple(size_expr(t) for t in a.args)) for a in cl.body
        )
        head = None
        if cl.head is not None:
            head = (
                cl.head.pred,
                tuple(size_expr(t) for t in cl.head.args),
            )
        out.append(
            AbstractClause(
                tuple(sorted(cl.free_vars(), key=lambda v: v.name)),
                body,
                head,
                cl.name,
            )
        )
    return out


@dataclass
class SizeInstance:
    """One integer instantiation of an abstract clause."""

    body: tuple[tuple[PredSymbol, tuple[int, ...]], ...]
    head: Optional[tuple[PredSymbol, tuple[int, ...]]]


def size_instances(
    clauses: list[AbstractClause],
    adts: ADTSystem,
    *,
    budget_per_clause: int = 30_000,
    max_size: int = 16,
) -> list[SizeInstance]:
    """Ground the abstract clauses over realizable size pools.

    Every variable ranges over ``S_sigma ∩ [1, B]`` where ``B`` adapts to
    the clause's variable count so the instance count stays within budget.
    """
    out: list[SizeInstance] = []
    image_cache: dict[Sort, list[int]] = {}

    def image(sort: Sort, bound: int) -> list[int]:
        key = sort
        if key not in image_cache:
            image_cache[key] = adts.size_image(sort, max_size)
        return [s for s in image_cache[key] if s <= bound]

    for cl in clauses:
        n = max(len(cl.vars), 1)
        bound = max(4, int(budget_per_clause ** (1.0 / n)))
        bound = min(bound, max_size)
        pools = [image(v.sort, bound) for v in cl.vars]
        for combo in itertools.product(*pools):
            env = dict(zip(cl.vars, combo))
            body = tuple(
                (p, tuple(e.eval(env) for e in exprs))
                for p, exprs in cl.body
            )
            head = None
            if cl.head is not None:
                head = (
                    cl.head[0],
                    tuple(e.eval(env) for e in cl.head[1]),
                )
            out.append(SizeInstance(body, head))
    return out


# ----------------------------------------------------------------------
# The solver
# ----------------------------------------------------------------------
@dataclass
class SizeElemConfig:
    """Budgets for both phases."""

    elem_share: float = 0.4
    max_templates_per_pred: int = 600
    max_combinations: int = 80_000
    positives_height: int = 4
    budget_per_clause: int = 30_000
    max_size: int = 16
    timeout: Optional[float] = None


class SizeElemSolver:
    """Two-phase Elem + size-template synthesizer (Eldarica proxy)."""

    name = "sizeelem"

    def __init__(self, config: Optional[SizeElemConfig] = None):
        self.config = config or SizeElemConfig()

    def solve(self, system: CHCSystem) -> SolveResult:
        start = time.monotonic()
        cfg = self.config
        deadline = None if cfg.timeout is None else start + cfg.timeout

        cex_budget = None
        if cfg.timeout is not None:
            cex_budget = max(cfg.timeout * 0.25, 0.05)
        cex = search_counterexample(
            normalize(remove_selectors(system)),
            max_height=4,
            timeout=cex_budget,
        )
        if cex.found:
            result = unsat(self.name, cex.refutation)
            result.elapsed = time.monotonic() - start
            return result

        # Phase 1: Elem (SizeElem subsumes Elem)
        elem_timeout = None
        if cfg.timeout is not None:
            elem_timeout = max(
                (deadline - time.monotonic()) * cfg.elem_share, 0.05
            )
        elem_result = ElemSolver(
            ElemConfig(timeout=elem_timeout)
        ).solve(system)
        if elem_result.is_sat:
            elem_result.solver = self.name
            elem_result.elapsed = time.monotonic() - start
            elem_result.details["phase"] = "elem"
            return elem_result

        # Phase 2: size templates
        invariant = self._size_phase(system, deadline)
        if invariant is None:
            result = unknown(
                self.name, "no size-constrained invariant within budget"
            )
        else:
            result = sat(self.name, invariant, phase="size")
        result.elapsed = time.monotonic() - start
        return result

    # ------------------------------------------------------------------
    def _size_phase(
        self, system: CHCSystem, deadline: Optional[float]
    ) -> Optional[SizeElemInvariant]:
        cfg = self.config
        adts = system.adts
        clauses = abstract_system(system)
        if clauses is None:
            return None
        preds = sorted(system.predicates.values(), key=lambda p: p.name)
        if not preds:
            return None

        fixpoint = bounded_least_fixpoint(
            system, max_height=cfg.positives_height, check_queries=False
        )
        positive_sizes: dict[PredSymbol, set[tuple[int, ...]]] = {
            p: set() for p in preds
        }
        for p in preds:
            for args in fixpoint.facts.get(p, set()):
                positive_sizes[p].add(tuple(term_size(t) for t in args))

        instances = size_instances(
            clauses,
            adts,
            budget_per_clause=cfg.budget_per_clause,
            max_size=cfg.max_size,
        )
        # implied negative size vectors, ICE-style (cf. solvers.elem)
        negative_sizes: dict[PredSymbol, set[tuple[int, ...]]] = {
            p: set() for p in preds
        }
        for inst in instances:
            if inst.head is not None:
                continue
            unknowns = [
                (p, vec)
                for p, vec in inst.body
                if vec not in positive_sizes.get(p, set())
            ]
            if len(unknowns) == 1:
                p, vec = unknowns[0]
                negative_sizes[p].add(vec)

        candidates: dict[PredSymbol, list[SizeTemplate]] = {}
        for p in preds:
            kept: list[SizeTemplate] = []
            pos = sorted(positive_sizes[p])
            neg = sorted(negative_sizes[p])
            for template in size_templates(p.arity):
                if deadline is not None and time.monotonic() > deadline:
                    return None
                if not all(template.eval(v) for v in pos):
                    continue
                if any(template.eval(v) for v in neg):
                    continue
                kept.append(template)
                if len(kept) >= cfg.max_templates_per_pred:
                    break
            if not kept:
                return None
            candidates[p] = kept

        # precompute extensions over occurring size vectors
        needed: dict[PredSymbol, set[tuple[int, ...]]] = {
            p: set() for p in preds
        }
        for inst in instances:
            for p, vec in inst.body:
                needed[p].add(vec)
            if inst.head is not None:
                needed[inst.head[0]].add(inst.head[1])
        extensions: dict[PredSymbol, list[frozenset]] = {}
        for p in preds:
            vectors = sorted(needed[p])
            extensions[p] = [
                frozenset(v for v in vectors if template.eval(v))
                for template in candidates[p]
            ]

        combos = 0
        choice: dict[PredSymbol, int] = {}

        def check_partial() -> bool:
            assigned = set(choice)
            for inst in instances:
                involved = {p for p, _ in inst.body}
                if inst.head is not None:
                    involved.add(inst.head[0])
                if not involved <= assigned:
                    continue
                if not all(
                    vec in extensions[p][choice[p]] for p, vec in inst.body
                ):
                    continue
                if inst.head is None:
                    return False
                hp, hvec = inst.head
                if hvec not in extensions[hp][choice[hp]]:
                    return False
            return True

        def backtrack(i: int) -> bool:
            nonlocal combos
            if deadline is not None and time.monotonic() > deadline:
                return False
            if i == len(preds):
                return True
            p = preds[i]
            for idx in range(len(candidates[p])):
                combos += 1
                if combos > cfg.max_combinations:
                    return False
                choice[p] = idx
                if check_partial() and backtrack(i + 1):
                    return True
                del choice[p]
            return False

        if not backtrack(0):
            return None
        return SizeElemInvariant(
            {p: candidates[p][choice[p]] for p in preds}, adts
        )


def solve_sizeelem(
    system: CHCSystem, *, timeout: Optional[float] = None, **overrides
) -> SolveResult:
    """One-call API for the SizeElem baseline."""
    config = SizeElemConfig(timeout=timeout)
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise TypeError(f"unknown SizeElem option {key!r}")
        setattr(config, key, value)
    return SizeElemSolver(config).solve(system)
