"""Elem baseline: elementary (first-order) invariant synthesis.

This is the repo's stand-in for Z3/Spacer in Table 1: a solver whose
*representation class* is Elem (Sec. 6.1) — quantifier-free first-order
formulas over the ADT signature, in the normal form of Definition 6 (atoms
are testers ``c?(s(x))``, path equalities ``s(x) = s'(y)`` and ground
equalities ``s(x) = g``, with guarded selector semantics).

The synthesis loop:

1. derive positive examples (the bounded least fixpoint — any safe
   inductive invariant must contain the least model),
2. enumerate per-predicate candidates (cubes and small DNFs over the atom
   space) consistent with the positives, simplest first,
3. backtracking search over candidate combinations, accepting the first
   assignment that passes the bounded inductiveness check (instantiations
   precomputed once, so each combination costs only set lookups),
4. if no combination works the solver reports UNKNOWN — by Prop. 1 it
   *must* diverge on programs without Elem invariants (Even, EvenLeft),
   exactly the behaviour Table 1 attributes to Spacer.

UNSAT answers come from the shared bounded counterexample search.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.chc.clauses import CHCSystem, Clause
from repro.chc.semantics import bounded_least_fixpoint, eval_constraint
from repro.chc.transform import normalize, remove_selectors
from repro.core.cex import search_counterexample
from repro.core.result import SolveResult, sat, unknown, unsat
from repro.logic.adt import ADTSystem
from repro.logic.formulas import TRUE
from repro.logic.sorts import FuncSymbol, PredSymbol, Sort
from repro.logic.terms import Term, Var, height, is_ground, substitute
from repro.theory.paths import (
    Path,
    PathError,
    all_paths,
    apply_path,
)


from repro.theory.normal_form import (
    Atom,
    ELEM_FALSE,
    ELEM_TRUE,
    ElemFormula,
    GroundEqAtom,
    Literal,
    PathEqAtom,
    PathTesterAtom,
)


@dataclass
class ElemInvariant:
    """A SAT witness: one elementary formula per predicate."""

    formulas: dict[PredSymbol, ElemFormula]
    adts: ADTSystem

    def member(self, pred: PredSymbol, args: tuple[Term, ...]) -> bool:
        return self.formulas[pred].eval(args, self.adts)

    def describe(self) -> str:
        return "\n".join(
            f"{p.name}({', '.join(f'x{i}' for i in range(p.arity))}) := "
            f"{f}"
            for p, f in sorted(
                self.formulas.items(), key=lambda kv: kv[0].name
            )
        )


# ----------------------------------------------------------------------
# Atom-space construction
# ----------------------------------------------------------------------
def atom_space(
    pred: PredSymbol,
    adts: ADTSystem,
    *,
    max_path_depth: int = 1,
    max_ground_height: int = 2,
    max_atoms: int = 64,
) -> list[Atom]:
    """All normal-form atoms over the predicate's argument tuple."""
    atoms: list[Atom] = []
    arg_paths: list[list[tuple[Path, Sort]]] = []
    for sort in pred.arg_sorts:
        arg_paths.append(list(all_paths(adts, sort, max_path_depth)))
    # testers
    for i, paths in enumerate(arg_paths):
        for path, sort in paths:
            for c in adts.constructors(sort):
                atoms.append(PathTesterAtom(i, path, c.name))
    # ground equalities
    for i, paths in enumerate(arg_paths):
        for path, sort in paths:
            for g in adts.terms_up_to_height(sort, max_ground_height):
                atoms.append(GroundEqAtom(i, path, g))
    # path equalities (between distinct positions or distinct paths)
    for i, paths_i in enumerate(arg_paths):
        for j in range(i, len(arg_paths)):
            for pi, sort_i in paths_i:
                for pj, sort_j in arg_paths[j]:
                    if sort_i != sort_j:
                        continue
                    if i == j and pi.steps >= pj.steps:
                        continue
                    atoms.append(PathEqAtom(i, pi, j, pj))
    atoms.sort(key=lambda a: a.complexity())  # type: ignore[attr-defined]
    return atoms[:max_atoms]


def candidate_formulas(
    atoms: list[Atom],
    *,
    max_cube_size: int = 2,
    max_disjuncts: int = 2,
    limit: int = 4000,
) -> Iterator[ElemFormula]:
    """Candidates in roughly increasing complexity.

    Yields ``true``, all single cubes of up to ``max_cube_size`` literals,
    then two-cube disjunctions of single literals.
    """
    yield ELEM_TRUE
    literals = [Literal(a, True) for a in atoms] + [
        Literal(a, False) for a in atoms
    ]
    literals.sort(key=lambda l: l.complexity())
    produced = 0
    for lit in literals:
        yield ElemFormula(((lit,),))
        produced += 1
        if produced >= limit:
            return
    if max_cube_size >= 2:
        for a, b in itertools.combinations(literals, 2):
            yield ElemFormula(((a, b),))
            produced += 1
            if produced >= limit:
                return
    if max_disjuncts >= 2:
        for a, b in itertools.combinations(literals, 2):
            yield ElemFormula(((a,), (b,)))
            produced += 1
            if produced >= limit:
                return


# ----------------------------------------------------------------------
# Precomputed bounded inductiveness checking
# ----------------------------------------------------------------------
@dataclass
class GroundInstance:
    """One instantiation of a clause: body tuples and head tuple."""

    body: tuple[tuple[PredSymbol, tuple[Term, ...]], ...]
    head: Optional[tuple[PredSymbol, tuple[Term, ...]]]


def terms_capped(
    adts: ADTSystem, sort: Sort, cap: int, *, max_height: int = 12
) -> list[Term]:
    """Ground terms of ``sort`` in height order, at most ``cap`` of them.

    For skinny universes (Peano numbers) this reaches much deeper than a
    fixed height bound, which is what catches parity-style violations that
    only manifest a few levels beyond the candidate formula's path depth.
    """
    out: list[Term] = []
    for h in range(1, max_height + 1):
        layer = adts.terms_of_height(sort, h)
        for t in layer:
            out.append(t)
            if len(out) >= cap:
                return out
    return out


def ground_instances(
    system: CHCSystem, *, terms_per_sort: int
) -> list[GroundInstance]:
    """All capped instantiations of all clauses with true constraints.

    Clauses with universal blocks are skipped (they cannot be checked
    conclusively at a bound); the Elem solver then simply never claims SAT
    for such systems, which matches the divergence of elementary engines
    on the STLC benchmarks (Sec. 8).
    """
    adts = system.adts
    out: list[GroundInstance] = []
    pool_cache: dict[Sort, list[Term]] = {}

    def pool(sort: Sort) -> list[Term]:
        if sort not in pool_cache:
            pool_cache[sort] = terms_capped(adts, sort, terms_per_sort)
        return pool_cache[sort]

    def clause_ground_subterms(cl: Clause) -> dict[Sort, list[Term]]:
        """Ground subterms mentioned by the clause itself.

        These must be reachable by the instantiation pools no matter how
        the height cap falls: a query whose constraint pins a variable to
        a deep constant (e.g. ``x = S^10(Z)``) would otherwise produce no
        instance at all and be *vacuously* satisfied — the soundness hole
        behind a bogus SAT on deep broken benchmarks.
        """
        from repro.logic.formulas import atoms as formula_atoms
        from repro.logic.terms import subterms as term_subterms

        seed: dict[Sort, list[Term]] = {}
        roots: list[Term] = []
        for atom in formula_atoms(cl.constraint):
            if isinstance(atom, Eq_):
                roots.extend((atom.lhs, atom.rhs))
            elif hasattr(atom, "term"):
                roots.append(atom.term)
            elif hasattr(atom, "args"):
                roots.extend(atom.args)
        for a in cl.body:
            roots.extend(a.args)
        if cl.head is not None:
            roots.extend(cl.head.args)
        for root in roots:
            for sub in term_subterms(root):
                if is_ground(sub):
                    bucket = seed.setdefault(sub.sort, [])
                    if sub not in bucket:
                        bucket.append(sub)
        return seed

    from repro.logic.formulas import Eq as Eq_

    for cl in system.clauses:
        if any(a.universal_vars for a in cl.body):
            continue
        free = sorted(cl.free_vars(), key=lambda v: v.name)
        seeds = clause_ground_subterms(cl)
        pools = [
            pool(v.sort)
            + [t for t in seeds.get(v.sort, ()) if t not in pool(v.sort)]
            for v in free
        ]
        for combo in itertools.product(*pools):
            env = dict(zip(free, combo))
            if cl.constraint != TRUE:
                from repro.logic.formulas import substitute_formula

                grounded = substitute_formula(cl.constraint, env)
                if not eval_constraint(grounded, adts):
                    continue
            body = tuple(
                (a.pred, tuple(substitute(t, env) for t in a.args))
                for a in cl.body
            )
            head = None
            if cl.head is not None:
                head = (
                    cl.head.pred,
                    tuple(substitute(t, env) for t in cl.head.args),
                )
            out.append(GroundInstance(body, head))
    return out


def has_universal_blocks(system: CHCSystem) -> bool:
    return any(
        a.universal_vars for cl in system.clauses for a in cl.body
    )


def implied_negatives(
    instances: list[GroundInstance],
    positives: dict[PredSymbol, set[tuple[Term, ...]]],
) -> dict[PredSymbol, set[tuple[Term, ...]]]:
    """ICE-style must-not-hold tuples.

    From a query instance whose body tuples are all positive except one,
    that one tuple cannot belong to *any* safe invariant (the positives are
    in the least model, hence in every invariant).  Filtering candidates
    against these negatives prunes unsound candidates long before the full
    inductiveness check runs.
    """
    negatives: dict[PredSymbol, set[tuple[Term, ...]]] = {
        p: set() for p in positives
    }
    for inst in instances:
        if inst.head is not None:
            continue
        unknowns = [
            (p, args)
            for p, args in inst.body
            if args not in positives.get(p, set())
        ]
        if len(unknowns) == 1:
            p, args = unknowns[0]
            negatives[p].add(args)
    return negatives


@dataclass
class ElemConfig:
    """Budgets of the enumeration search."""

    max_path_depth: int = 1
    max_ground_height: int = 2
    max_atoms: int = 48
    max_candidates_per_pred: int = 400
    max_combinations: int = 60_000
    terms_per_sort: int = 10
    positives_height: int = 4
    timeout: Optional[float] = None


class ElemSolver:
    """Enumerative synthesizer for the Elem representation class."""

    name = "elem"

    def __init__(self, config: Optional[ElemConfig] = None):
        self.config = config or ElemConfig()

    # ------------------------------------------------------------------
    def solve(self, system: CHCSystem) -> SolveResult:
        start = time.monotonic()
        cfg = self.config
        deadline = None if cfg.timeout is None else start + cfg.timeout

        cex_budget = None
        if cfg.timeout is not None:
            cex_budget = max(cfg.timeout * 0.3, 0.05)
        cex = search_counterexample(
            normalize(remove_selectors(system)),
            max_height=4,
            timeout=cex_budget,
        )
        if cex.found:
            result = unsat(self.name, cex.refutation)
            result.elapsed = time.monotonic() - start
            return result

        invariant = self._synthesize(system, deadline)
        if invariant is None:
            result = unknown(
                self.name, "no elementary invariant within budget"
            )
        else:
            result = sat(self.name, invariant)
        result.elapsed = time.monotonic() - start
        return result

    # ------------------------------------------------------------------
    def _synthesize(
        self, system: CHCSystem, deadline: Optional[float]
    ) -> Optional[ElemInvariant]:
        cfg = self.config
        adts = system.adts
        if has_universal_blocks(system):
            return None
        preds = sorted(system.predicates.values(), key=lambda p: p.name)
        if not preds:
            return None

        fixpoint = bounded_least_fixpoint(
            system, max_height=cfg.positives_height, check_queries=False
        )
        positives = {
            p: set(fixpoint.facts.get(p, set())) for p in preds
        }

        instances = ground_instances(
            system, terms_per_sort=cfg.terms_per_sort
        )
        negatives = implied_negatives(instances, positives)

        candidates: dict[PredSymbol, list[ElemFormula]] = {}
        for p in preds:
            atoms = atom_space(
                p,
                adts,
                max_path_depth=cfg.max_path_depth,
                max_ground_height=cfg.max_ground_height,
                max_atoms=cfg.max_atoms,
            )
            kept: list[ElemFormula] = []
            pos = sorted(positives[p], key=str)
            neg = sorted(negatives[p], key=str)
            for formula in candidate_formulas(atoms):
                if deadline is not None and time.monotonic() > deadline:
                    return None
                if not all(formula.eval(args, adts) for args in pos):
                    continue
                if any(formula.eval(args, adts) for args in neg):
                    continue
                kept.append(formula)
                if len(kept) >= cfg.max_candidates_per_pred:
                    break
            if not kept:
                return None
            candidates[p] = kept

        # precompute candidate extensions over the tuples occurring in the
        # instances so that combination checking is pure set lookups
        needed: dict[PredSymbol, set[tuple[Term, ...]]] = {
            p: set() for p in preds
        }
        for inst in instances:
            for p, args in inst.body:
                needed[p].add(args)
            if inst.head is not None:
                needed[inst.head[0]].add(inst.head[1])
        extensions: dict[PredSymbol, list[frozenset]] = {}
        for p in preds:
            tuples = sorted(needed[p], key=str)
            exts = []
            for formula in candidates[p]:
                exts.append(
                    frozenset(
                        args for args in tuples if formula.eval(args, adts)
                    )
                )
            extensions[p] = exts

        # backtracking over candidate indices, simplest-first
        combos = 0
        choice: dict[PredSymbol, int] = {}

        def check_partial() -> bool:
            assigned = set(choice)
            for inst in instances:
                involved = {p for p, _ in inst.body}
                if inst.head is not None:
                    involved.add(inst.head[0])
                if not involved <= assigned:
                    continue
                body_ok = all(
                    args in extensions[p][choice[p]] for p, args in inst.body
                )
                if not body_ok:
                    continue
                if inst.head is None:
                    return False
                hp, hargs = inst.head
                if hargs not in extensions[hp][choice[hp]]:
                    return False
            return True

        def backtrack(i: int) -> bool:
            nonlocal combos
            if deadline is not None and time.monotonic() > deadline:
                return False
            if i == len(preds):
                return True
            p = preds[i]
            for idx in range(len(candidates[p])):
                combos += 1
                if combos > cfg.max_combinations:
                    return False
                choice[p] = idx
                if check_partial() and backtrack(i + 1):
                    return True
                del choice[p]
            return False

        if not backtrack(0):
            return None
        return ElemInvariant(
            {p: candidates[p][choice[p]] for p in preds}, adts
        )


def solve_elem(
    system: CHCSystem, *, timeout: Optional[float] = None, **overrides
) -> SolveResult:
    """One-call API for the Elem baseline."""
    config = ElemConfig(timeout=timeout)
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise TypeError(f"unknown Elem option {key!r}")
        setattr(config, key, value)
    return ElemSolver(config).solve(system)
