"""The TIP-style suite: 454 inductive problems (Sec. 8 "Benchmarks").

The original evaluation filtered "Tons of Inductive Problems" down to 454
pure-ADT CHC systems over lists, queues, regular expressions and Peano
integers.  The files themselves are not redistributable here, so we
regenerate a synthetic population with the same *structure* (documented in
DESIGN.md):

* a small solvable fringe, split between structural-regularity problems
  (RInGen's unique SATs — "some variant of evenness predicate", per the
  paper), ordering problems (Eldarica's unique SATs — "all of them with
  orderings on Peano numbers"), shared parity problems, and elementary
  offset problems,
* an UNSAT fringe with counterexamples at graded depths,
* a long tail of safe conjectures (commutativity, functionality,
  involutions) whose invariants lie outside all three representation
  classes — the hundreds of timeouts Table 1 reports for every solver.

All 454 instances are deterministic functions of their parameters.
"""

from __future__ import annotations

from functools import partial

from repro.benchgen.builders import (
    add_conjecture_system,
    broken_list_system,
    broken_mod_system,
    functionality_query_system,
    list_alternating_system,
    list_every_other_z_system,
    list_length_mod_system,
    list_length_ordering_system,
    mirror_system,
    nat_mod_system,
    nat_two_residues_system,
    offset_pair_system,
    ordering_system,
    revacc_system,
    tree_branch_parity_system,
    tree_left_spine_zigzag_system,
)
from repro.benchgen.suite import Problem, Suite

REG = "Reg"
ELEM = "Elem"
SIZE = "SizeElem"

TIP_SIZE = 454


def tip_suite() -> Suite:
    """All 454 problems."""
    suite = Suite("TIP")

    # ---- 14 structural-regularity problems (RInGen-unique SAT) --------
    suite.add("tip-list-alt-zh", "structural",
              partial(list_alternating_system, head_first=True),
              "sat", (REG,))
    suite.add("tip-list-alt-sh", "structural",
              partial(list_alternating_system, head_first=False),
              "sat", (REG,))
    suite.add("tip-list-eoz", "structural",
              list_every_other_z_system, "sat", (REG,))
    suite.add("tip-tree-left", "structural",
              partial(tree_branch_parity_system, left=True), "sat", (REG,))
    suite.add("tip-tree-right", "structural",
              partial(tree_branch_parity_system, left=False), "sat", (REG,))
    suite.add("tip-tree-zigzag", "structural",
              tree_left_spine_zigzag_system, "sat", (REG,))
    for i, (m, r, c) in enumerate(
        [(2, 0, 1), (2, 1, 1), (3, 0, 1), (3, 1, 2), (4, 0, 3), (4, 2, 1),
         (5, 0, 2), (5, 1, 3)]
    ):
        suite.add(f"tip-list-mod{m}-{r}-{c}", "structural",
                  partial(list_length_mod_system, m, r, c),
                  "sat", (REG, SIZE))
    # note: the list-length problems are size-expressible too; the
    # structural six are the strictly-regular core

    # ---- 12 shared parity problems (Reg ∩ SizeElem) --------------------
    for m, r, c in [(2, 0, 1), (2, 1, 1), (2, 0, 3), (3, 0, 1), (3, 1, 1),
                    (3, 2, 1), (3, 0, 2), (4, 0, 1), (4, 1, 1), (4, 0, 3),
                    (5, 0, 1), (6, 0, 1)]:
        suite.add(f"tip-nat-mod{m}-r{r}-c{c}", "parity",
                  partial(nat_mod_system, m, r, c), "sat", (REG, SIZE))

    # ---- 26 ordering problems (Eldarica's unique SATs) -----------------
    for strict in (True, False):
        for widen in range(12):
            suite.add(
                f"tip-ord-{'s' if strict else 'w'}-{widen}", "ordering",
                partial(ordering_system, strict=strict, widen=widen),
                "sat", (SIZE,),
            )
    suite.add("tip-list-len-ord", "ordering",
              list_length_ordering_system, "sat", (SIZE,))
    suite.add("tip-ord-wide", "ordering",
              partial(ordering_system, strict=True, widen=12),
              "sat", (SIZE,))

    # ---- 18 elementary offset problems ---------------------------------
    for c1, c2 in [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (2, 5),
                   (3, 4), (3, 5), (4, 5), (1, 5), (1, 6), (2, 6),
                   (3, 6), (4, 6), (5, 6), (1, 7), (2, 7), (3, 7)]:
        suite.add(f"tip-offset-{c1}-{c2}", "offset",
                  partial(offset_pair_system, c1, c2),
                  "sat", (REG, ELEM, SIZE))

    # ---- 42 UNSAT problems at graded counterexample depths -------------
    # heights = modulus*depth + 1; the distribution spreads refutations
    # across the solvers' iterative-deepening budgets, reproducing the
    # Table 1 ordering (RInGen/Spacer > CVC4-Ind > Eldarica on UNSAT)
    graded = (
        [(2, 1, i) for i in range(6)]          # height 3
        + [(3, 1, i) for i in range(8)]        # height 4
        + [(2, 2, i) for i in range(4)]        # height 5
        + [(4, 1, i) for i in range(4)]        # height 5
        + [(3, 2, i) for i in range(4)]        # height 7
        + [(5, 2, i) for i in range(4)]        # height 11
        + [(7, 2, i) for i in range(4)]        # height 15
    )
    for m, d, decoys in graded:
        suite.add(
            f"tip-broken-mod{m}-d{d}-v{decoys}", "broken",
            partial(broken_mod_system, m, d, decoys=decoys), "unsat",
        )
    for k in (1, 2, 3, 4, 6, 8, 10, 12):
        suite.add(f"tip-broken-list-{k}", "broken",
                  partial(broken_list_system, k), "unsat")

    # ---- long tail: safe conjectures beyond every class ----------------
    tail_target = TIP_SIZE - len(suite)
    tail: list[tuple[str, object]] = []
    for kind in ("comm", "assoc-z", "mono"):
        tail.append((f"tip-add-{kind}", partial(add_conjecture_system, kind)))
    for g in range(60):
        tail.append((f"tip-mirror-g{g}", partial(mirror_system, g)))
    for g in range(60):
        tail.append((f"tip-rev-g{g}", partial(revacc_system, g)))
    for kind in ("add", "dbl"):
        for g in range(60):
            tail.append(
                (f"tip-{kind}-fun-g{g}",
                 partial(functionality_query_system, kind, g))
            )
    # pad deterministically with deeper functionality variants if needed
    g = 60
    while len(tail) < tail_target:
        for kind in ("add", "dbl"):
            if len(tail) >= tail_target:
                break
            tail.append(
                (f"tip-{kind}-fun-g{g}",
                 partial(functionality_query_system, kind, g))
            )
        g += 1
    for name, factory in tail[:tail_target]:
        family = "conjecture"
        expected = "sat"
        suite.add(name, family, factory, expected, ())

    assert len(suite) == TIP_SIZE, f"TIP has {len(suite)} problems"
    return suite


def tip_statistics(suite: Suite) -> dict[str, int]:
    """Population statistics (documented against the paper in DESIGN.md)."""
    families = {f: len(ps) for f, ps in suite.by_family().items()}
    families["total"] = len(suite)
    families["sat"] = len(suite.sat_problems())
    families["unsat"] = len(suite.unsat_problems())
    return families
