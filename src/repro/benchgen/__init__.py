"""Benchmark suites: the De Angelis-inspired 60 and the TIP-style 454."""

from repro.benchgen.adtbench import (
    adtbench_suites,
    diseq_suite,
    positiveeq_suite,
)
from repro.benchgen.suite import Problem, Suite
from repro.benchgen.tip import TIP_SIZE, tip_statistics, tip_suite

__all__ = [
    "Problem",
    "Suite",
    "TIP_SIZE",
    "adtbench_suites",
    "diseq_suite",
    "positiveeq_suite",
    "tip_statistics",
    "tip_suite",
]
