"""The De Angelis-inspired 60-problem suite (Sec. 8 "Benchmarks").

The paper's own benchmark set: 60 CHC systems over binary trees, queues,
lists and Peano numbers, split into

* **PositiveEq** (35 problems): equality occurs only positively in clause
  bodies — the population where finite models abound (RInGen: 27 SAT;
  Spacer: 4; Eldarica: 1),
* **Diseq** (25 problems, one of them unsatisfiable): disequality
  constraints in bodies, where finite models are rare (Sec. 4.4's
  discussion; RInGen: 4 SAT + 1 UNSAT).

We regenerate the same population structure from the deterministic
builders of :mod:`repro.benchgen.builders`; `expected_classes` encodes
which representation class admits an invariant, which is what the paper's
per-solver counts track.
"""

from __future__ import annotations

from functools import partial

from repro.benchgen.builders import (
    add_conjecture_system,
    broken_list_system,
    broken_mod_system,
    diag_variant_system,
    diseq_guard_system,
    diseq_unsat_system,
    list_alternating_system,
    list_every_other_z_system,
    list_length_mod_system,
    list_length_ordering_system,
    nat_mod_system,
    nat_two_residues_system,
    offset_pair_system,
    ordering_system,
    tree_branch_parity_system,
    tree_left_spine_zigzag_system,
)
from repro.benchgen.suite import Suite

REG = "Reg"
ELEM = "Elem"
SIZE = "SizeElem"


def positiveeq_suite() -> Suite:
    """The 35 PositiveEq problems (no negative equality anywhere)."""
    suite = Suite("PositiveEq")

    # -- 12 Peano modular problems (regular + size-expressible) --------
    mod_params = [
        (2, 0, 1), (2, 1, 1), (2, 0, 3), (3, 0, 1), (3, 0, 2), (3, 1, 1),
        (3, 2, 2), (4, 0, 1), (4, 0, 2), (4, 1, 2), (4, 2, 3), (5, 0, 2),
    ]
    for m, r, c in mod_params:
        suite.add(
            f"nat-mod{m}-r{r}-c{c}",
            "nat-mod",
            partial(nat_mod_system, m, r, c),
            "sat",
            (REG, SIZE),
        )

    # -- 4 two-residue disjointness problems ---------------------------
    for m, r1, r2 in [(2, 0, 1), (3, 0, 1), (3, 1, 2), (4, 1, 3)]:
        suite.add(
            f"nat-mod{m}-{r1}-vs-{r2}",
            "nat-mod2",
            partial(nat_two_residues_system, m, r1, r2),
            "sat",
            (REG, SIZE),
        )

    # -- 5 list-length parity problems ----------------------------------
    for m, r, c in [(2, 0, 1), (2, 1, 1), (3, 0, 1), (3, 0, 2), (4, 0, 2)]:
        suite.add(
            f"list-len-mod{m}-{r}-{c}",
            "list-parity",
            partial(list_length_mod_system, m, r, c),
            "sat",
            (REG, SIZE),
        )

    # -- 3 structural list regularities (Reg only) ----------------------
    suite.add(
        "list-alt-zh", "list-structural",
        partial(list_alternating_system, head_first=True), "sat", (REG,),
    )
    suite.add(
        "list-alt-sh", "list-structural",
        partial(list_alternating_system, head_first=False), "sat", (REG,),
    )
    suite.add(
        "list-every-other-z", "list-structural",
        list_every_other_z_system, "sat", (REG,),
    )

    # -- 3 tree branch parity problems (Reg only, Prop. 2) --------------
    suite.add(
        "tree-left-parity", "tree-parity",
        partial(tree_branch_parity_system, left=True), "sat", (REG,),
    )
    suite.add(
        "tree-right-parity", "tree-parity",
        partial(tree_branch_parity_system, left=False), "sat", (REG,),
    )
    suite.add(
        "tree-zigzag", "tree-parity",
        tree_left_spine_zigzag_system, "sat", (REG,),
    )

    # -- 4 elementary offset problems (Spacer's four) -------------------
    for c1, c2 in [(1, 2), (1, 3), (2, 3), (2, 4)]:
        suite.add(
            f"nat-offset-{c1}-vs-{c2}",
            "nat-offset",
            partial(offset_pair_system, c1, c2),
            "sat",
            (REG, ELEM, SIZE),
            notes="IncDec family: mod-(c2-c1+k) regular models also exist",
        )

    # -- 1 ordering problem (Eldarica's one) ----------------------------
    suite.add(
        "list-len-ord", "ordering",
        list_length_ordering_system, "sat", (SIZE,),
    )

    # -- 3 safe-but-undefinable conjectures (everyone diverges) ---------
    # (only positive-equality kinds belong in this half of the benchmark)
    for kind in ("mono", "grow"):
        suite.add(
            f"nat-add-{kind}", "add-conjecture",
            partial(add_conjecture_system, kind), "sat", (),
        )
    suite.add(
        "nat-ord-strict", "ordering",
        partial(ordering_system, strict=True), "sat", (SIZE,),
    )
    assert len(suite) == 35, f"PositiveEq has {len(suite)} problems"
    return suite


def diseq_suite() -> Suite:
    """The 25 Diseq problems: 24 SAT candidates (RInGen proves 4) plus
    the 1 UNSAT instance of Table 1's Diseq/UNSAT row."""
    suite = Suite("Diseq")

    # -- 4 diseq-guarded problems with finite regular models ------------
    for offset in (2, 3, 4, 5):
        suite.add(
            f"diseq-guard-{offset}", "diseq-guard",
            partial(diseq_guard_system, offset), "sat", (REG, SIZE),
        )

    # -- 3 Diag variants (Elem only — Prop. 11) -------------------------
    for kind in ("nat", "list", "tree"):
        suite.add(
            f"diag-{kind}", "diag",
            partial(diag_variant_system, kind), "sat", (ELEM, SIZE),
        )

    # -- 17 involution problems (everyone diverges) ----------------------
    # mirror/reverse are involutions: the query's disequality can never
    # fire, but proving that requires tracking a *functional relation*
    # between the two arguments — outside Reg (pointwise relations, like
    # Diag), outside Elem (unbounded depth) and outside SizeElem (sizes
    # are preserved but equality is not size-determined).  Finite models
    # do not exist either: diseq must hold on unboundedly many distinct
    # pairs (the Sec. 4.4 effect).
    from repro.benchgen.builders import mirror_system, revacc_system

    for g in range(9):
        suite.add(
            f"tree-mirror-g{g}", "involution",
            partial(mirror_system, g), "sat", (),
        )
    for g in range(8):
        suite.add(
            f"list-rev-g{g}", "involution",
            partial(revacc_system, g), "sat", (),
        )

    # -- 1 UNSAT problem -------------------------------------------------
    suite.add(
        "diseq-unsat", "diseq-unsat", diseq_unsat_system, "unsat",
    )
    assert len(suite) == 25, f"Diseq has {len(suite)} problems"
    return suite


def adtbench_suites() -> list[Suite]:
    """Both halves of the De Angelis-inspired benchmark (60 systems)."""
    return [positiveeq_suite(), diseq_suite()]
