"""Parameterized CHC program families for the benchmark suites.

The paper evaluates on two corpora: a De Angelis-inspired set of 60
problems over binary trees, queues, lists and Peano numbers (split into
*PositiveEq* and *Diseq*), and 454 TIP-derived inductive problems.  We
regenerate both populations from deterministic program-family builders:

* modular-arithmetic predicates over Peano numbers (regular invariants —
  the finite-model finder's home turf),
* list-shape predicates (length parity, alternation patterns) over
  ``NatList``,
* branch-parity predicates over binary trees (EvenLeft variants, *not*
  size-expressible),
* ordering relations (SizeElem's home turf, not regular),
* offset relations ``y = x + c`` (elementary invariants),
* relational-addition conjectures (safe but beyond all three classes —
  the TIP long tail),
* broken variants of all of the above (UNSAT with shallow derivations),
* disequality-constrained families for the Diseq subset.

Every builder returns a fresh :class:`~repro.chc.clauses.CHCSystem` and is
pure in its parameters, so suites are reproducible without fixtures.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.chc.clauses import BodyAtom, CHCSystem, Clause
from repro.logic.adt import (
    CONS,
    NAT,
    NATLIST,
    NIL,
    S,
    TREE,
    Z,
    nat,
    nat_system,
    natlist_system,
    tree_system,
)
from repro.logic.formulas import Eq, Not, TRUE, conj, diseq
from repro.logic.sorts import PredSymbol
from repro.logic.terms import App, Term, Var

from repro.problems import leaf, node, s, z


def _nv(name: str) -> Var:
    return Var(name, NAT)


def _lv(name: str) -> Var:
    return Var(name, NATLIST)


def _tv(name: str) -> Var:
    return Var(name, TREE)


def s_n(t: Term, n: int) -> Term:
    for _ in range(n):
        t = s(t)
    return t


def cons_z(t: Term) -> Term:
    """``cons(Z, t)`` — the list spine constructor used by list families."""
    return App(CONS, (App(Z), t))


def nil() -> Term:
    return App(NIL)


# ----------------------------------------------------------------------
# Peano modular arithmetic (regular invariants)
# ----------------------------------------------------------------------
def nat_mod_system(
    modulus: int, residue: int, clash_offset: int, *, name: str = ""
) -> CHCSystem:
    """``P = {x ≡ residue (mod modulus)}``; query forbids a clashing pair.

    Clauses: ``P(S^residue(Z))``, ``P(x) -> P(S^modulus(x))`` and the query
    ``P(x) ∧ P(S^clash_offset(x)) -> ⊥``.  Safe iff ``clash_offset`` is not
    divisible by ``modulus``; regular (mod-``modulus`` automaton), not
    elementary, and SizeElem iff expressible by a single congruence —
    which it is, so these are the Reg ∩ SizeElem population.
    """
    system = CHCSystem(
        nat_system(), name=name or f"nat-mod{modulus}-r{residue}-c{clash_offset}"
    )
    p = PredSymbol("P", (NAT,))
    x = _nv("x")
    system.add(Clause(TRUE, (), BodyAtom(p, (s_n(z(), residue),)), "base"))
    system.add(
        Clause(
            TRUE,
            (BodyAtom(p, (x,)),),
            BodyAtom(p, (s_n(x, modulus),)),
            "step",
        )
    )
    system.add(
        Clause(
            TRUE,
            (BodyAtom(p, (x,)), BodyAtom(p, (s_n(x, clash_offset),))),
            None,
            "query",
        )
    )
    return system


def nat_two_residues_system(
    modulus: int, r1: int, r2: int, *, name: str = ""
) -> CHCSystem:
    """Two residue-class predicates with a disjointness query.

    Safe iff ``r1 ≢ r2 (mod modulus)``.  Regular and size-expressible.
    """
    system = CHCSystem(
        nat_system(), name=name or f"nat-mod{modulus}-{r1}-vs-{r2}"
    )
    p = PredSymbol("P", (NAT,))
    q = PredSymbol("Q", (NAT,))
    x = _nv("x")
    system.add(Clause(TRUE, (), BodyAtom(p, (s_n(z(), r1),)), "p-base"))
    system.add(
        Clause(TRUE, (BodyAtom(p, (x,)),), BodyAtom(p, (s_n(x, modulus),)), "p-step")
    )
    system.add(Clause(TRUE, (), BodyAtom(q, (s_n(z(), r2),)), "q-base"))
    system.add(
        Clause(TRUE, (BodyAtom(q, (x,)),), BodyAtom(q, (s_n(x, modulus),)), "q-step")
    )
    system.add(
        Clause(TRUE, (BodyAtom(p, (x,)), BodyAtom(q, (x,))), None, "query")
    )
    return system


# ----------------------------------------------------------------------
# List-shape families
# ----------------------------------------------------------------------
def list_length_mod_system(
    modulus: int, residue: int, clash: int, *, name: str = ""
) -> CHCSystem:
    """Length-modulo predicate over NatList with a clashing query."""
    system = CHCSystem(
        natlist_system(), name=name or f"list-len-mod{modulus}-{residue}-{clash}"
    )
    p = PredSymbol("L", (NATLIST,))
    xs = _lv("xs")
    base: Term = nil()
    for _ in range(residue):
        base = cons_z(base)
    step = xs
    for _ in range(modulus):
        step = cons_z(step)
    clash_term = xs
    for _ in range(clash):
        clash_term = cons_z(clash_term)
    system.add(Clause(TRUE, (), BodyAtom(p, (base,)), "base"))
    system.add(
        Clause(TRUE, (BodyAtom(p, (xs,)),), BodyAtom(p, (step,)), "step")
    )
    system.add(
        Clause(
            TRUE,
            (BodyAtom(p, (xs,)), BodyAtom(p, (clash_term,))),
            None,
            "query",
        )
    )
    return system


def list_alternating_system(*, head_first: bool = True, name: str = "") -> CHCSystem:
    """Lists whose elements alternate ``Z, S(Z), Z, ...`` — a *structural*
    regularity invisible to size constraints (elements don't change the
    length) and beyond Elem (unbounded depth): RInGen-only territory."""
    system = CHCSystem(
        natlist_system(), name=name or f"list-alt-{'zh' if head_first else 'sh'}"
    )
    alt0 = PredSymbol("AltZ", (NATLIST,))
    alt1 = PredSymbol("AltS", (NATLIST,))
    xs = _lv("xs")
    zero: Term = App(Z)
    one: Term = s(App(Z))
    system.add(Clause(TRUE, (), BodyAtom(alt0, (nil(),)), "alt0-nil"))
    system.add(Clause(TRUE, (), BodyAtom(alt1, (nil(),)), "alt1-nil"))
    system.add(
        Clause(
            TRUE,
            (BodyAtom(alt1, (xs,)),),
            BodyAtom(alt0, (App(CONS, (zero, xs)),)),
            "alt0-cons",
        )
    )
    system.add(
        Clause(
            TRUE,
            (BodyAtom(alt0, (xs,)),),
            BodyAtom(alt1, (App(CONS, (one, xs)),)),
            "alt1-cons",
        )
    )
    first, second = (zero, one) if head_first else (one, zero)
    # query: an alternating list cannot start with two equal heads
    system.add(
        Clause(
            TRUE,
            (
                BodyAtom(
                    alt0 if head_first else alt1,
                    (App(CONS, (first, App(CONS, (first, xs)))),),
                ),
            ),
            None,
            "query",
        )
    )
    return system


def list_every_other_z_system(*, name: str = "") -> CHCSystem:
    """Another structural-regularity family: every even position is Z."""
    system = CHCSystem(natlist_system(), name=name or "list-every-other-z")
    p = PredSymbol("EOZ", (NATLIST,))
    q = PredSymbol("EOZodd", (NATLIST,))
    xs = _lv("xs")
    y = _nv("y")
    zero: Term = App(Z)
    system.add(Clause(TRUE, (), BodyAtom(p, (nil(),)), "base"))
    system.add(
        Clause(
            TRUE,
            (BodyAtom(q, (xs,)),),
            BodyAtom(p, (App(CONS, (zero, xs)),)),
            "even-pos",
        )
    )
    system.add(Clause(TRUE, (), BodyAtom(q, (nil(),)), "odd-base"))
    system.add(
        Clause(
            TRUE,
            (BodyAtom(p, (xs,)),),
            BodyAtom(q, (App(CONS, (y, xs)),)),
            "odd-pos",
        )
    )
    # query: an EOZ list cannot start with S(_)
    system.add(
        Clause(
            TRUE,
            (BodyAtom(p, (App(CONS, (s(y), xs)),)),),
            None,
            "query",
        )
    )
    return system


# ----------------------------------------------------------------------
# Tree branch-parity families (EvenLeft variants)
# ----------------------------------------------------------------------
def tree_branch_parity_system(
    *, left: bool = True, parity: int = 0, name: str = ""
) -> CHCSystem:
    """Branch-length parity along the leftmost/rightmost spine.

    The EvenLeft family (Example 5): regular but *not* SizeElem (Prop. 2)
    — size constraints count every constructor, not one branch.
    """
    side = "left" if left else "right"
    system = CHCSystem(
        tree_system(), name=name or f"tree-{side}-parity{parity}"
    )
    p = PredSymbol("B", (TREE,))
    x, y, w = _tv("x"), _tv("y"), _tv("w")
    base: Term = leaf()
    if parity:
        base = node(base, y) if left else node(y, base)
    inner = node(x, y) if left else node(y, x)
    step = node(inner, w) if left else node(w, inner)
    system.add(Clause(TRUE, (), BodyAtom(p, (leaf(),)), "base") if parity == 0
               else Clause(TRUE, (), BodyAtom(p, (node(leaf(), leaf()),)), "base"))
    system.add(
        Clause(TRUE, (BodyAtom(p, (x,)),), BodyAtom(p, (step,)), "step")
    )
    bad = node(x, y) if left else node(y, x)
    system.add(
        Clause(
            TRUE,
            (BodyAtom(p, (x,)), BodyAtom(p, (bad,))),
            None,
            "query",
        )
    )
    return system


def tree_left_spine_zigzag_system(*, name: str = "") -> CHCSystem:
    """Parity of the zig-zag path (right, then left, then right, ...).

    ``zig(leaf) = 0``, ``zig(node(l, r)) = 1 + zag(r)``,
    ``zag(node(l, r)) = 1 + zig(l)``; the two predicates collect trees of
    even / odd zig-length and the query asserts their disjointness.
    Regular (a two-state automaton alternates along the zig-zag path) but
    neither elementary nor size-expressible — the EvenLeft story on a
    bent branch.
    """
    system = CHCSystem(tree_system(), name=name or "tree-zigzag")
    even = PredSymbol("ZZeven", (TREE,))
    odd = PredSymbol("ZZodd", (TREE,))
    x, y, w = _tv("x"), _tv("y"), _tv("w")
    system.add(Clause(TRUE, (), BodyAtom(even, (leaf(),)), "even-base"))
    system.add(
        Clause(
            TRUE,
            (),
            BodyAtom(odd, (node(y, leaf()),)),
            "odd-base",
        )
    )
    # two zig-zag steps: x sits at the right child's left child
    system.add(
        Clause(
            TRUE,
            (BodyAtom(even, (x,)),),
            BodyAtom(even, (node(y, node(x, w)),)),
            "even-step",
        )
    )
    system.add(
        Clause(
            TRUE,
            (BodyAtom(odd, (x,)),),
            BodyAtom(odd, (node(y, node(x, w)),)),
            "odd-step",
        )
    )
    system.add(
        Clause(
            TRUE,
            (BodyAtom(even, (x,)), BodyAtom(odd, (x,))),
            None,
            "query",
        )
    )
    return system


# ----------------------------------------------------------------------
# Ordering families (SizeElem territory)
# ----------------------------------------------------------------------
def ordering_system(
    *, strict: bool = True, widen: int = 0, name: str = ""
) -> CHCSystem:
    """``lt``/``gt`` disjointness with optional widening steps.

    SizeElem-solvable (size orderings), not regular (Prop. 12), not
    elementary (unbounded-depth relation).
    """
    system = CHCSystem(
        nat_system(),
        name=name or f"nat-ord-{'strict' if strict else 'weak'}-w{widen}",
    )
    lt = PredSymbol("lt", (NAT, NAT))
    gt = PredSymbol("gt", (NAT, NAT))
    x, y = _nv("x"), _nv("y")
    base_rhs = s(y) if strict else y
    system.add(
        Clause(Eq(x, z()), (), BodyAtom(lt, (x, base_rhs)), "lt-base")
    )
    system.add(
        Clause(
            TRUE, (BodyAtom(lt, (x, y)),), BodyAtom(lt, (s(x), s(y))), "lt-step"
        )
    )
    system.add(
        Clause(
            TRUE, (BodyAtom(lt, (x, y)),), BodyAtom(lt, (x, s(y))), "lt-widen"
        )
    )
    system.add(
        Clause(Eq(y, z()), (), BodyAtom(gt, (s_n(x, 1 + widen), y)), "gt-base")
    )
    system.add(
        Clause(
            TRUE, (BodyAtom(gt, (x, y)),), BodyAtom(gt, (s(x), s(y))), "gt-step"
        )
    )
    system.add(
        Clause(TRUE, (BodyAtom(lt, (x, y)), BodyAtom(gt, (x, y))), None, "query")
    )
    return system


def list_length_ordering_system(*, name: str = "") -> CHCSystem:
    """Strict/weak length-ordering disjointness over NatList."""
    system = CHCSystem(natlist_system(), name=name or "list-len-ord")
    shorter = PredSymbol("shorter", (NATLIST, NATLIST))
    longer = PredSymbol("longer", (NATLIST, NATLIST))
    xs, ys = _lv("xs"), _lv("ys")
    h1, h2 = _nv("h1"), _nv("h2")
    system.add(
        Clause(
            Eq(xs, nil()),
            (),
            BodyAtom(shorter, (xs, App(CONS, (h1, ys)))),
            "shorter-base",
        )
    )
    system.add(
        Clause(
            TRUE,
            (BodyAtom(shorter, (xs, ys)),),
            BodyAtom(
                shorter, (App(CONS, (h1, xs)), App(CONS, (h2, ys)))
            ),
            "shorter-step",
        )
    )
    system.add(
        Clause(
            Eq(ys, nil()),
            (),
            BodyAtom(longer, (App(CONS, (h1, xs)), ys)),
            "longer-base",
        )
    )
    system.add(
        Clause(
            TRUE,
            (BodyAtom(longer, (xs, ys)),),
            BodyAtom(
                longer, (App(CONS, (h1, xs)), App(CONS, (h2, ys)))
            ),
            "longer-step",
        )
    )
    system.add(
        Clause(
            TRUE,
            (BodyAtom(shorter, (xs, ys)), BodyAtom(longer, (xs, ys))),
            None,
            "query",
        )
    )
    return system


# ----------------------------------------------------------------------
# Offset families (Elem territory)
# ----------------------------------------------------------------------
def offset_pair_system(c1: int, c2: int, *, name: str = "") -> CHCSystem:
    """``P = {(x, x+c1)}`` vs ``Q = {(x, x+c2)}`` — elementary invariants
    ``y = S^c(x)`` refute the query when ``c1 != c2`` (IncDec family)."""
    system = CHCSystem(
        nat_system(), name=name or f"nat-offset-{c1}-vs-{c2}"
    )
    p = PredSymbol("P", (NAT, NAT))
    q = PredSymbol("Q", (NAT, NAT))
    x, y = _nv("x"), _nv("y")
    system.add(
        Clause(
            conj(Eq(x, z()), Eq(y, s_n(z(), c1))),
            (),
            BodyAtom(p, (x, y)),
            "p-base",
        )
    )
    system.add(
        Clause(
            TRUE, (BodyAtom(p, (x, y)),), BodyAtom(p, (s(x), s(y))), "p-step"
        )
    )
    system.add(
        Clause(
            conj(Eq(x, z()), Eq(y, s_n(z(), c2))),
            (),
            BodyAtom(q, (x, y)),
            "q-base",
        )
    )
    system.add(
        Clause(
            TRUE, (BodyAtom(q, (x, y)),), BodyAtom(q, (s(x), s(y))), "q-step"
        )
    )
    system.add(
        Clause(TRUE, (BodyAtom(p, (x, y)), BodyAtom(q, (x, y))), None, "query")
    )
    return system


# ----------------------------------------------------------------------
# Relational addition conjectures (beyond all classes: the TIP long tail)
# ----------------------------------------------------------------------
def add_conjecture_system(kind: str, *, name: str = "") -> CHCSystem:
    """Safe conjectures about relational Peano addition.

    ``kind`` selects the conjecture: ``comm`` (commutativity), ``assoc-z``
    (left-unit), ``mono`` (monotonicity).  All are safe, none has an
    invariant in Reg / Elem / SizeElem over our clause encodings — every
    solver diverges, reproducing the large timeout counts of Table 1.
    """
    system = CHCSystem(nat_system(), name=name or f"nat-add-{kind}")
    add = PredSymbol("add", (NAT, NAT, NAT))
    x, y, zz, w = _nv("x"), _nv("y"), _nv("z"), _nv("w")
    system.add(Clause(TRUE, (), BodyAtom(add, (z(), y, y)), "add-base"))
    system.add(
        Clause(
            TRUE,
            (BodyAtom(add, (x, y, zz)),),
            BodyAtom(add, (s(x), y, s(zz))),
            "add-step",
        )
    )
    if kind == "comm":
        system.add(
            Clause(
                Not(Eq(zz, w)),
                (BodyAtom(add, (x, y, zz)), BodyAtom(add, (y, x, w))),
                None,
                "query",
            )
        )
    elif kind == "grow":
        # x + (y+1) != x, stated with positive equality only
        system.add(
            Clause(
                Eq(zz, x),
                (BodyAtom(add, (x, s(y), zz)),),
                None,
                "query",
            )
        )
    elif kind == "assoc-z":
        system.add(
            Clause(
                Not(Eq(x, y)),
                (BodyAtom(add, (x, z(), y)),),
                None,
                "query",
            )
        )
    elif kind == "mono":
        system.add(
            Clause(
                Eq(zz, x),
                (BodyAtom(add, (s(x), y, zz)),),
                None,
                "query",
            )
        )
    else:
        raise ValueError(f"unknown conjecture kind {kind!r}")
    return system


# ----------------------------------------------------------------------
# Disequality (Diseq subset) families
# ----------------------------------------------------------------------
def diag_variant_system(sort_kind: str, *, name: str = "") -> CHCSystem:
    """Diag (Example 11) over Nat, NatList or Tree — diseq in bodies.

    No regular invariant exists (disequality is not a regular relation);
    elementary ``x = y`` / ``x != y`` works, so these are the problems
    Spacer solves in the Diseq subset while RInGen diverges.
    """
    if sort_kind == "nat":
        system = CHCSystem(nat_system(), name=name or "diag-nat")
        sort, mk = NAT, lambda v: _nv(v)
        succ = lambda t: s(t)
        base: Term = z()
    elif sort_kind == "list":
        system = CHCSystem(natlist_system(), name=name or "diag-list")
        sort, mk = NATLIST, lambda v: _lv(v)
        succ = cons_z
        base = nil()
    elif sort_kind == "tree":
        system = CHCSystem(tree_system(), name=name or "diag-tree")
        sort, mk = TREE, lambda v: _tv(v)
        succ = lambda t: node(t, leaf())
        base = leaf()
    else:
        raise ValueError(f"unknown sort kind {sort_kind!r}")
    eqp = PredSymbol("eqp", (sort, sort))
    dis = PredSymbol("disp", (sort, sort))
    x, y = mk("x"), mk("y")
    system.add(Clause(Eq(x, y), (), BodyAtom(eqp, (x, y)), "eq-refl"))
    system.add(
        Clause(Not(Eq(x, y)), (), BodyAtom(dis, (x, y)), "dis-base")
    )
    system.add(
        Clause(
            TRUE,
            (BodyAtom(dis, (x, y)),),
            BodyAtom(dis, (succ(x), succ(y))),
            "dis-step",
        )
    )
    system.add(
        Clause(TRUE, (BodyAtom(eqp, (x, y)), BodyAtom(dis, (x, y))), None, "query")
    )
    return system


def diseq_guard_system(offset: int, *, name: str = "") -> CHCSystem:
    """A diseq-guarded reachability problem with a finite regular model.

    ``P`` collects numbers stepping by ``offset`` from Z; the query
    requires ``P(x) ∧ P(y) ∧ x != y`` to avoid a specific collision
    pattern.  The diseq atoms have mod-``offset`` regular models, giving
    the handful of Diseq problems RInGen *does* solve (Table 1: 4).
    """
    system = CHCSystem(nat_system(), name=name or f"diseq-guard-{offset}")
    p = PredSymbol("P", (NAT,))
    bad = PredSymbol("Bad", (NAT,))
    x, y = _nv("x"), _nv("y")
    system.add(Clause(TRUE, (), BodyAtom(p, (z(),)), "base"))
    system.add(
        Clause(
            TRUE, (BodyAtom(p, (x,)),), BodyAtom(p, (s_n(x, offset),)), "step"
        )
    )
    system.add(
        Clause(
            Not(Eq(x, s_n(y, offset - 1) if offset > 1 else s(y))),
            (BodyAtom(p, (x,)), BodyAtom(bad, (x,))),
            None,
            "query",
        )
    )
    # Bad is the complement residue class
    system.add(Clause(TRUE, (), BodyAtom(bad, (s(z()),)), "bad-base"))
    system.add(
        Clause(
            TRUE,
            (BodyAtom(bad, (x,)),),
            BodyAtom(bad, (s_n(x, offset),)),
            "bad-step",
        )
    )
    return system


def diseq_unsat_system(*, name: str = "") -> CHCSystem:
    """The Sec. 4.4 unsatisfiable system ``Z != S(Z) -> ⊥`` in its
    predicate form (through an auxiliary reachable pair)."""
    system = CHCSystem(nat_system(), name=name or "diseq-unsat")
    r = PredSymbol("R", (NAT, NAT))
    x, y = _nv("x"), _nv("y")
    system.add(
        Clause(conj(Eq(x, z()), Eq(y, s(z()))), (), BodyAtom(r, (x, y)), "base")
    )
    system.add(
        Clause(Not(Eq(x, y)), (BodyAtom(r, (x, y)),), None, "query")
    )
    return system


# ----------------------------------------------------------------------
# Broken (UNSAT) variants
# ----------------------------------------------------------------------
def broken_mod_system(
    modulus: int, depth: int, *, decoys: int = 0, name: str = ""
) -> CHCSystem:
    """An unsatisfiable mod family with a graded counterexample depth.

    The query clashes at ``S^(modulus*depth)(Z)``, so the shallowest
    derivation of ⊥ uses terms of height ``modulus*depth + 1`` — the knob
    the TIP suite uses to spread refutations across solver search depths.
    ``decoys`` appends satisfiable side predicates that make instances
    syntactically distinct without changing the refutation depth.
    """
    system = CHCSystem(
        nat_system(), name=name or f"broken-mod{modulus}-d{depth}"
    )
    p = PredSymbol("P", (NAT,))
    x = _nv("x")
    system.add(Clause(TRUE, (), BodyAtom(p, (z(),)), "base"))
    system.add(
        Clause(TRUE, (BodyAtom(p, (x,)),), BodyAtom(p, (s_n(x, modulus),)), "step")
    )
    system.add(
        Clause(
            Eq(x, s_n(z(), modulus * depth)),
            (BodyAtom(p, (x,)),),
            None,
            "query",
        )
    )
    for i in range(decoys):
        q = PredSymbol(f"Decoy{i}", (NAT,))
        system.add(
            Clause(TRUE, (), BodyAtom(q, (s_n(z(), i),)), f"decoy-{i}")
        )
    return system


def broken_list_system(k: int, *, name: str = "") -> CHCSystem:
    """UNSAT list variant: the supposedly-unreachable length is reachable."""
    system = CHCSystem(natlist_system(), name=name or f"broken-list-{k}")
    p = PredSymbol("L", (NATLIST,))
    xs = _lv("xs")
    bad: Term = nil()
    for _ in range(k):
        bad = cons_z(bad)
    system.add(Clause(TRUE, (), BodyAtom(p, (nil(),)), "base"))
    system.add(
        Clause(TRUE, (BodyAtom(p, (xs,)),), BodyAtom(p, (cons_z(xs),)), "step")
    )
    system.add(Clause(Eq(xs, bad), (BodyAtom(p, (xs,)),), None, "query"))
    return system


def mirror_system(guards: int = 0, *, name: str = "") -> CHCSystem:
    """Tree mirroring is an involution — safe, but the invariant must
    track a *functional relation* between trees, which none of Reg / Elem
    / SizeElem can express: mirroring relates subtrees at unbounded depth
    (beyond Elem), swaps left/right (beyond sizes), and relates the two
    arguments pointwise (beyond tree-tuple regularity, like Diag).

    ``guards`` prepends extra ``node(leaf, ·)`` wrappers to the query's
    disequality, deepening the distinctions a finite model would need —
    the Sec. 4.4 effect that makes Diseq problems hard for everyone.
    """
    system = CHCSystem(tree_system(), name=name or f"tree-mirror-g{guards}")
    mir = PredSymbol("mirror", (TREE, TREE))
    x, y, x1, y1 = _tv("x"), _tv("y"), _tv("x1"), _tv("y1")
    system.add(
        Clause(TRUE, (), BodyAtom(mir, (leaf(), leaf())), "mirror-leaf")
    )
    system.add(
        Clause(
            TRUE,
            (BodyAtom(mir, (x, x1)), BodyAtom(mir, (y, y1))),
            BodyAtom(mir, (node(x, y), node(y1, x1))),
            "mirror-node",
        )
    )
    lhs, rhs = x, y
    for _ in range(guards):
        lhs, rhs = node(leaf(), lhs), node(leaf(), rhs)
    system.add(
        Clause(
            Not(Eq(lhs, rhs)),
            (BodyAtom(mir, (x, x1)), BodyAtom(mir, (x1, y))),
            None,
            "query",
        )
    )
    return system


def revacc_system(guards: int = 0, *, name: str = "") -> CHCSystem:
    """Accumulator-reverse is an involution over lists (same story as
    :func:`mirror_system`, over ``NatList``)."""
    system = CHCSystem(natlist_system(), name=name or f"list-rev-g{guards}")
    rev = PredSymbol("revacc", (NATLIST, NATLIST, NATLIST))
    xs, acc, ys, zs = _lv("xs"), _lv("acc"), _lv("ys"), _lv("zs")
    h = _nv("h")
    system.add(
        Clause(TRUE, (), BodyAtom(rev, (nil(), acc, acc)), "rev-base")
    )
    system.add(
        Clause(
            TRUE,
            (BodyAtom(rev, (xs, App(CONS, (h, acc)), ys)),),
            BodyAtom(rev, (App(CONS, (h, xs)), acc, ys)),
            "rev-step",
        )
    )
    lhs, rhs = xs, zs
    for _ in range(guards):
        lhs, rhs = cons_z(lhs), cons_z(rhs)
    system.add(
        Clause(
            Not(Eq(lhs, rhs)),
            (
                BodyAtom(rev, (xs, nil(), ys)),
                BodyAtom(rev, (ys, nil(), zs)),
            ),
            None,
            "query",
        )
    )
    return system


def functionality_query_system(
    kind: str, guards: int = 0, *, name: str = ""
) -> CHCSystem:
    """Functionality conjectures: a relationally-encoded function has at
    most one output.  Safe, but the invariant must say "the relation is a
    function" — a pointwise input/output correspondence outside all three
    representation classes (same obstruction as Diag, Prop. 11).

    ``kind``: ``add`` (ternary addition) or ``dbl`` (doubling).
    ``guards`` wraps the disequality in extra successors, deepening the
    distinctions required of a would-be finite model.
    """
    system = CHCSystem(nat_system(), name=name or f"nat-{kind}-fun-g{guards}")
    x, y, u, w = _nv("x"), _nv("y"), _nv("u"), _nv("w")
    if kind == "add":
        rel = PredSymbol("add", (NAT, NAT, NAT))
        system.add(Clause(TRUE, (), BodyAtom(rel, (z(), y, y)), "base"))
        system.add(
            Clause(
                TRUE,
                (BodyAtom(rel, (x, y, u)),),
                BodyAtom(rel, (s(x), y, s(u))),
                "step",
            )
        )
        atoms = (BodyAtom(rel, (x, y, u)), BodyAtom(rel, (x, y, w)))
    elif kind == "dbl":
        rel = PredSymbol("dbl", (NAT, NAT))
        system.add(Clause(TRUE, (), BodyAtom(rel, (z(), z())), "base"))
        system.add(
            Clause(
                TRUE,
                (BodyAtom(rel, (x, u)),),
                BodyAtom(rel, (s(x), s(s(u)))),
                "step",
            )
        )
        atoms = (BodyAtom(rel, (x, u)), BodyAtom(rel, (x, w)))
    else:
        raise ValueError(f"unknown functionality kind {kind!r}")
    lhs, rhs = u, w
    for _ in range(guards):
        lhs, rhs = s(lhs), s(rhs)
    system.add(Clause(Not(Eq(lhs, rhs)), atoms, None, "query"))
    return system
