"""Benchmark problem metadata and suite containers.

A :class:`Problem` bundles a lazily-built CHC system with its ground truth
and provenance; a suite is a named, ordered list of problems.  Ground
truth statuses:

* ``sat`` — the system is satisfiable (the program is safe),
* ``unsat`` — a refutation exists,
* ``sat`` problems additionally carry ``expected_classes``: which
  representation classes contain *some* safe inductive invariant, which is
  what determines which solver families can in principle succeed (the
  correlation the paper highlights: "the amount of solved tasks correlates
  with definability").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.chc.clauses import CHCSystem


@dataclass
class Problem:
    """One benchmark instance."""

    name: str
    suite: str
    family: str
    factory: Callable[[], CHCSystem]
    expected_status: str  # "sat" | "unsat"
    expected_classes: frozenset[str] = frozenset()  # subset of Reg/Elem/SizeElem
    notes: str = ""

    def build(self) -> CHCSystem:
        system = self.factory()
        system.name = self.name
        return system

    def __str__(self) -> str:
        classes = ",".join(sorted(self.expected_classes)) or "-"
        return (
            f"{self.suite}/{self.name} [{self.family}] "
            f"expected={self.expected_status} classes={classes}"
        )


@dataclass
class Suite:
    """A named collection of problems."""

    name: str
    problems: list[Problem] = field(default_factory=list)

    def add(
        self,
        name: str,
        family: str,
        factory: Callable[[], CHCSystem],
        expected_status: str,
        classes: Iterator[str] = (),
        notes: str = "",
    ) -> Problem:
        problem = Problem(
            name,
            self.name,
            family,
            factory,
            expected_status,
            frozenset(classes),
            notes,
        )
        self.problems.append(problem)
        return problem

    def __len__(self) -> int:
        return len(self.problems)

    def __iter__(self) -> Iterator[Problem]:
        return iter(self.problems)

    def by_family(self) -> dict[str, list[Problem]]:
        out: dict[str, list[Problem]] = {}
        for p in self.problems:
            out.setdefault(p.family, []).append(p)
        return out

    def sat_problems(self) -> list[Problem]:
        return [p for p in self.problems if p.expected_status == "sat"]

    def unsat_problems(self) -> list[Problem]:
        return [p for p in self.problems if p.expected_status == "unsat"]
